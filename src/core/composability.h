// Composability typing — the paper's Conclusions list "development of
// language support to characterize the 'composability' of filters" as
// continuing work. This is that support, as a lightweight structural type
// system over the byte streams filters exchange:
//
//   * a filter declares what stream type it REQUIRES on input
//     ("any", an exact type like "media", or a wrapper pattern "rle(*)")
//     and how it TRANSFORMS the type ("media" -> "rle(media)");
//   * a chain, given its ingress stream type, computes the type at every
//     position and rejects reconfigurations that would wedge a filter
//     against a stream it cannot parse — inserting a decompressor where
//     nothing is compressed, removing the decryptor that downstream
//     depends on, reordering decode before encode.
//
// Types are plain strings by design: third-party (uploaded) filters mint
// new wrapper names without any registry coordination.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rapidware::core {

/// The wildcard requirement/type.
inline constexpr const char* kAnyType = "any";

/// True if a stream of `type` satisfies `requirement`.
///   requirement "any"      — always satisfied;
///   requirement "name(*)"  — satisfied by any "name(...)" wrapper;
///   otherwise              — exact match.
bool type_satisfies(const std::string& requirement, const std::string& type);

/// Wraps a type: wrap_type("rle", "media") == "rle(media)". Wrapping "any"
/// stays "any" (unknown in, unknown out).
std::string wrap_type(const std::string& wrapper, const std::string& inner);

/// Unwraps one layer if `type` is `wrapper(...)`: unwrap_type("rle",
/// "rle(media)") == "media". Returns nullopt when the wrapper does not
/// match ("any" unwraps to "any").
std::optional<std::string> unwrap_type(const std::string& wrapper,
                                       const std::string& type);

/// One step of a chain type-check: a human-readable error, or nullopt.
std::optional<std::string> check_step(const std::string& filter_name,
                                      const std::string& requirement,
                                      const std::string& incoming_type);

}  // namespace rapidware::core
