#include "core/event_loop.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <utility>

namespace rapidware::core {

void EventLoop::post(Task task) {
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  rw::MutexLock lk(mu_);
  queue_.push_back(std::move(task));
  if (waiters_ > 0) cv_.notify_one();
}

void EventLoop::run() {
  thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  // This thread's buffer arena for the loop's whole lifetime: every
  // data-plane BufferPool::local() on this thread now resolves to pool_,
  // taking zero global-pool locks on the steady-state path.
  util::BufferPool* prev_pool = util::BufferPool::install_local(&pool_);
  const auto epoch = std::chrono::steady_clock::now();
  auto window_start = epoch;  // busy-fraction EWMA measurement window
  std::deque<Task> batch;
  for (;;) {
    batch.clear();
    {
      rw::MutexLock lk(mu_);
      if (queue_.empty()) {
        if (stop_) break;
        // Idle: park until the next post or the next due timer. The wait
        // is bounded by the timer horizon so slaved virtual time cannot
        // fall behind a due PeriodicTask by more than the overshoot of
        // one wakeup.
        const util::Micros next = clock_.next_event_at();
        std::chrono::microseconds timeout(std::chrono::hours(1));
        if (next != std::numeric_limits<util::Micros>::max()) {
          const auto wall_next = epoch + std::chrono::microseconds(next);
          const auto now = std::chrono::steady_clock::now();
          timeout = std::chrono::duration_cast<std::chrono::microseconds>(
              wall_next > now ? wall_next - now
                              : std::chrono::steady_clock::duration::zero());
        }
        ++waiters_;
        cv_.wait_for(mu_, timeout, [this] {  // rw-lint: allow(RW008) the loop's own idle parking, nothing queued behind it
          mu_.assert_held();
          return !queue_.empty() || stop_;
        });
        --waiters_;
      }
      batch.swap(queue_);
    }
    // Count each task as it completes (not the batch at once): a sync()
    // barrier returns mid-batch, and tasks_run() must already cover every
    // task ordered before it. queue_depth_ mirrors that: a task counts as
    // load until it has retired, so mid-batch snapshots see the backlog.
    const auto batch_start = std::chrono::steady_clock::now();
    for (Task& task : batch) {
      task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    // Advance slaved virtual time to the elapsed wall time, firing due
    // timers (idle-flow eviction sweeps and the like) on this thread.
    const auto now = std::chrono::steady_clock::now();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(now - epoch);
    clock_.run_until(static_cast<util::Micros>(elapsed.count()));
    // Fold this iteration into the busy-fraction EWMA (alpha 1/8): busy =
    // time spent executing the batch, window = everything since the last
    // update including the idle park, so an idle loop decays toward 0.
    const double window =
        std::chrono::duration<double>(now - window_start).count();
    if (window > 0.0) {
      const double busy =
          std::chrono::duration<double>(now - batch_start).count();
      const double sample = busy >= window ? 1.0 : busy / window;
      const double old =
          static_cast<double>(busy_ppm_.load(std::memory_order_relaxed)) /
          1e6;
      const double next = old + (sample - old) / 8.0;
      busy_ppm_.store(static_cast<std::uint32_t>(next * 1e6),
                      std::memory_order_relaxed);
      window_start = now;
    }
  }
  util::BufferPool::install_local(prev_pool);
  thread_id_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::wake() {
  // An empty task, not a bare notify: the idle wait's predicate only
  // breaks on queue activity or stop, and a task bounces the loop through
  // a fresh horizon computation.
  post([] {});
}

void EventLoop::stop() {
  rw::MutexLock lk(mu_);
  stop_ = true;
  cv_.notify_all();
}

void EventLoop::sync() {
  if (on_loop_thread()) return;  // inside a task: already ordered
  struct Barrier {
    rw::Mutex mu;  // unranked leaf: nothing is ever acquired under it
    rw::CondVar cv;
    bool hit RW_GUARDED_BY(mu) = false;
  } barrier;
  post([&barrier] {
    rw::MutexLock lk(barrier.mu);
    barrier.hit = true;
    barrier.cv.notify_all();
  });
  rw::MutexLock lk(barrier.mu);
  barrier.cv.wait(barrier.mu, [&barrier] {  // rw-lint: allow(RW008) control-plane barrier, never called from a worker (guarded above)
    barrier.mu.assert_held();
    return barrier.hit;
  });
}

}  // namespace rapidware::core
