// Filter base classes (the paper's Filter class, Section 4).
//
// Every proxy filter owns one DetachableInputStream and one
// DetachableOutputStream — always present, so the ControlThread/FilterChain
// can splice the filter in and out of a running stream. A filter runs its
// processing loop on its own thread between start() and the loop's exit.
//
// Two processing styles:
//   * ByteFilter   — run() reads raw byte chunks and transforms them;
//   * PacketFilter — run() reads length-prefixed frames (util::framing) and
//     handles whole packets, which is how stream-type-specific insertion
//     points ("frame boundaries", Section 3) are honoured.
//
// Removal protocol: the chain marks the filter's DIS with a soft EOF; the
// loop observes end-of-stream, calls the flush hook (e.g. emit a partial FEC
// group), and exits WITHOUT closing its DOS, so downstream stays connected.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/detachable_stream.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/frame_reader.h"

namespace rapidware::core {

class EventLoop;

namespace detail {
struct FilterEventCore;
}  // namespace detail

/// Free-form key/value parameters a filter exposes for the control manager.
using ParamMap = std::map<std::string, std::string>;

class Filter {
 public:
  explicit Filter(std::string name,
                  std::size_t buffer_capacity =
                      DetachableInputStream::kDefaultCapacity);
  virtual ~Filter();

  Filter(const Filter&) = delete;
  Filter& operator=(const Filter&) = delete;

  const std::string& name() const noexcept { return name_; }

  DetachableInputStream& dis() noexcept { return *dis_; }
  DetachableOutputStream& dos() noexcept { return *dos_; }

  /// Spawns the processing thread. May be called again after the previous
  /// run exited (filters are restartable so a removed filter can be
  /// re-inserted elsewhere in the chain).
  void start();

  /// Hosts the filter on an event loop instead of a thread: the loop
  /// drives on_ready() whenever a stream readiness callback fires, so the
  /// filter consumes no OS thread while idle. Falls back to start() when
  /// the subclass is not event_capable() — that is the blocking shim that
  /// keeps thread-per-filter code working unchanged. Restartable exactly
  /// like start().
  void start_on(EventLoop& loop);

  /// Whether this subclass implements the non-blocking on_ready() drive.
  /// Event-incapable filters hosted via start_on() silently run in thread
  /// mode (the shim), so a chain may mix both styles.
  virtual bool event_capable() const { return false; }

  /// True while hosted on an event loop (between start_on() and the drive
  /// reaching Drive::kDone).
  bool event_hosted() const noexcept {
    return event_hosted_.load(std::memory_order_acquire);
  }

  /// True while the processing loop is executing.
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Waits for the processing loop to exit. Does not itself request the
  /// exit — use detach_request() or close the input first.
  void join();

  /// Asks the loop to finish: drains the input via soft EOF. Pair with
  /// join().
  void detach_request();

  /// Asks a source-driven filter (reader endpoint) to stop producing.
  /// Default: no-op; ordinary filters stop via detach_request().
  virtual void interrupt() {}

  /// Human-readable one-line description for the control manager.
  virtual std::string describe() const { return name_; }

  /// Current tunable parameters (FEC (n,k), throttle rate, ...).
  virtual ParamMap params() const { return {}; }

  /// Reconfigures a parameter at run time; returns false if unknown/invalid.
  virtual bool set_param(const std::string& key, const std::string& value);

  // Composability typing (core/composability.h): what stream type this
  // filter requires, and how it transforms the type. Defaults describe a
  // type-preserving filter that accepts anything (taps, throttles, null).
  virtual std::string input_requirement() const { return "any"; }
  virtual std::string output_type(const std::string& input) const {
    return input;
  }

  /// Publishes this filter's metrics under `scope` (callback gauges over the
  /// filter's streams). FilterChain::bind_metrics calls this for every
  /// member and drops the scope before the filter can be destroyed.
  /// Overrides must call the base, and registered callbacks must not acquire
  /// the chain mutex (lock-order rule in src/obs/metrics.h).
  virtual void register_metrics(obs::Scope scope);

 protected:
  /// The processing loop body; runs on the filter's thread.
  virtual void run() = 0;

  /// What one on_ready() drive concluded (event-hosted mode).
  enum class Drive {
    kIdle,  // would-block: a readiness watcher is armed, wait for it
    kMore,  // work budget exhausted; re-post so other chains get a turn
    kDone,  // stream ended (run() returning, in thread terms)
  };

  /// One non-blocking drive: pull input via the poll APIs until would-block
  /// or the per-iteration budget is spent. Runs on the loop thread; must
  /// never block (the whole point — rw_lint RW008 polices the loop).
  /// Subclasses that return true from event_capable() must override.
  virtual Drive on_ready() { return Drive::kDone; }

  /// Hosted-run lifecycle hooks, called on the control thread in start_on()
  /// (before the first drive) and on the loop thread after the final one.
  /// Reset per-run decode state here (FrameReader, pending buffers).
  virtual void event_start() {}
  virtual void event_stop() {}

  /// The readiness target for auxiliary inputs (endpoint packet sources
  /// register this with set_scheduler). Valid between event_start() and
  /// event_stop(); null in thread mode.
  Scheduler* event_scheduler() const noexcept;

  /// Per-drive work budget: after this many packets/chunks the drive
  /// returns kMore, yielding the worker to other chains (fairness under
  /// run-to-completion dispatch).
  static constexpr int kDriveBudget = 64;

 private:
  friend struct detail::FilterEventCore;

  void thread_main();
  void drive_event(detail::FilterEventCore& core);
  void finish_event(detail::FilterEventCore& core);

  std::string name_;
  std::unique_ptr<DetachableInputStream> dis_;
  std::unique_ptr<DetachableOutputStream> dos_;
  // Not mutex-guarded by design: start()/join() are control-plane calls,
  // serialized externally (FilterChain holds its mu_ across every splice).
  // Only `running_` and `event_hosted_` may be read concurrently, hence
  // atomic. `event_core_` is written by start_on() and read by join()/the
  // destructor — both control-plane — and by loop tasks that hold their
  // own shared_ptr copy.
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> event_hosted_{false};
  std::shared_ptr<detail::FilterEventCore> event_core_;
};

/// Transforms raw byte chunks.
class ByteFilter : public Filter {
 public:
  using Filter::Filter;

  bool event_capable() const override { return true; }

 protected:
  void run() final;

  /// Event-hosted drive: same process()/flush_tail() contract as run(),
  /// fed by poll_read_borrow and drained by try_write_some. A chunk that
  /// does not fit downstream is parked in ev_out_ and retried on the
  /// writable callback; input is not read while output is parked, so the
  /// parked backlog is bounded by one process() result.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

  /// Transforms `in`; whatever it returns is written downstream. The default
  /// passes data through unchanged.
  virtual util::Bytes process(util::Bytes in) { return in; }

  /// Called when the input reports EOF (hard or detach); emit any buffered
  /// tail here by returning it.
  virtual util::Bytes flush_tail() { return {}; }

  /// Chunk size for reads. Sized to drain a default 64 KiB stream buffer
  /// in a couple of reads: every read_some() is a lock acquisition (and,
  /// when the writer is parked, a wakeup), so bigger chunks directly cut
  /// per-byte synchronization on pass-through hops.
  static constexpr std::size_t kChunk = 32768;

 private:
  bool flush_ev_out();

  // Event-mode state; touched only on the loop thread between
  // event_start() and the final drive (single-consumer, like run()'s
  // locals in thread mode).
  util::Bytes ev_buf_;                 // recycled read/process buffer
  std::deque<util::Bytes> ev_out_;     // output parked behind backpressure
  std::size_t ev_out_off_ = 0;         // bytes of ev_out_.front() written
  bool ev_tail_done_ = false;          // flush_tail() already ran this run
};

/// Transforms whole framed packets; may emit zero or more packets per input.
class PacketFilter : public Filter {
 public:
  using Filter::Filter;

 public:
  void register_metrics(obs::Scope scope) override;

  bool event_capable() const override { return true; }

 protected:
  void run() final;

  /// Event-hosted drive: batched frames via FrameReader::poll(), the same
  /// on_packet()/on_flush() contract as run(). Emits that find the
  /// downstream ring full (or mid-splice) are parked in ev_pending_ and
  /// retried on the writable callback before any new input is taken.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

  /// Handles one input packet; call emit() for each output packet.
  virtual void on_packet(util::Bytes packet) = 0;

  /// Called on EOF before the loop exits; emit pending state here.
  virtual void on_flush() {}

  /// Writes one framed packet downstream.
  void emit(util::ByteSpan packet);

  /// Move-through emit: writes the packet, then recycles its capacity
  /// through the calling thread's arena (util::BufferPool::local() — the
  /// worker's pool on an event-hosted drive). A pass-through hop — FrameReader
  /// acquires from the pool, on_packet forwards with
  /// emit(std::move(packet)) — touches the allocator zero times per packet
  /// in steady state (asserted by the pool hit-rate test). Prefer this
  /// overload whenever the packet buffer is dead after the call.
  void emit(util::Bytes&& packet);

  std::uint64_t packets_in() const noexcept {
    return packets_in_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_out() const noexcept {
    return packets_out_.load(std::memory_order_relaxed);
  }

 private:
  bool flush_ev_pending();
  void ev_emit(util::Bytes&& packet);

  // Atomic so snapshot readers can observe them while the loop runs.
  std::atomic<std::uint64_t> packets_in_{0};
  std::atomic<std::uint64_t> packets_out_{0};

  // Event-mode state; loop-thread-only between event_start() and the final
  // drive.
  std::unique_ptr<util::FrameReader> ev_frames_;
  std::deque<util::Bytes> ev_pending_;  // emits parked behind backpressure
  bool ev_flushed_ = false;             // on_flush() already ran this run
};

/// The "null" filter: forwards bytes untouched. Two EndPoints plus a null
/// filter (or none) form the paper's null proxy.
class NullFilter final : public ByteFilter {
 public:
  NullFilter() : ByteFilter("null") {}
  explicit NullFilter(std::string name) : ByteFilter(std::move(name)) {}
};

}  // namespace rapidware::core
