// EndPoint objects (paper, Section 4): special filters that bridge the
// chain's detachable streams to the outside world. A reader endpoint pulls
// from a source and writes into its DOS; a writer endpoint reads its DIS and
// pushes into a sink. Two endpoints plus a ControlThread form a null proxy.
//
// Network-backed endpoints (the paper's EndPointSocketReader/Writer) live in
// src/proxy, built on these generic classes; here we depend only on the
// abstract byte/packet source and sink interfaces.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/filter.h"
#include "util/io.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

/// Blocking packet producer for reader endpoints.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Blocks for the next packet; nullopt means the source is exhausted or
  /// was interrupted.
  virtual std::optional<util::Bytes> next_packet() = 0;

  /// Unblocks a pending or future next_packet() call, making it return
  /// nullopt. Called from another thread to stop the endpoint.
  virtual void interrupt() {}

  // Optional non-blocking surface (event-hosted reader endpoints). A source
  // that returns true from pollable() must implement poll_packet() and
  // set_scheduler(): a poll that finds the queue empty arms the registered
  // scheduler, whose on_readable() fires exactly once when a packet (or
  // the finished flag) arrives — the same one-shot contract the detachable
  // streams use.

  /// Whether this source supports the poll_packet()/set_scheduler() pair.
  virtual bool pollable() const { return false; }

  /// Non-blocking next_packet(): nullopt with *finished=false means
  /// would-block (the scheduler is now armed); nullopt with *finished=true
  /// means exhausted/interrupted.
  virtual std::optional<util::Bytes> poll_packet(bool* finished);

  /// Registers (or, with nullptr, clears) the readiness target for
  /// poll_packet() would-blocks. The callback runs under the source's
  /// internal lock and must only post, never re-enter the source.
  virtual void set_scheduler(Scheduler*) {}
};

/// Packet consumer for writer endpoints.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(util::ByteSpan packet) = 0;
  /// Called once when the stream feeding this sink ends.
  virtual void on_end() {}
};

/// Reads whole packets from a PacketSource and sends them down the chain as
/// framed messages (the paper's EndPointSocketReader shape).
class PacketReaderEndpoint final : public Filter {
 public:
  /// `buffer_capacity` sizes this endpoint's own (unused) input ring; it
  /// exists so dense many-chain deployments can shrink the per-stage ring
  /// footprint (bench_many_chains runs thousands of chains per worker).
  PacketReaderEndpoint(std::string name, std::shared_ptr<PacketSource> source,
                       std::size_t buffer_capacity =
                           DetachableInputStream::kDefaultCapacity);

  /// Asks the source to stop; run() then exits after the current packet.
  void interrupt() override { source_->interrupt(); }

  /// Event-hostable only when the source offers the non-blocking surface;
  /// otherwise start_on() falls back to the thread shim.
  bool event_capable() const override { return source_->pollable(); }

  std::uint64_t packets_read() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }

  void register_metrics(obs::Scope scope) override;

 protected:
  void run() override;

  /// Event drive: poll packets from the source and frame them downstream.
  /// A frame that finds the ring full is parked (one-deep stash) and
  /// retried on the writable callback; source exhaustion reaches kDone
  /// without closing the DOS — exactly like run() returning.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

 private:
  std::shared_ptr<PacketSource> source_;
  std::atomic<std::uint64_t> packets_{0};
  // Event-mode state; loop-thread-only between event_start() and the final
  // drive.
  std::optional<util::Bytes> ev_parked_;  // payload awaiting ring space
};

/// Reads framed messages from the chain and delivers them to a PacketSink
/// (the paper's EndPointSocketWriter shape).
class PacketWriterEndpoint final : public Filter {
 public:
  PacketWriterEndpoint(std::string name, std::shared_ptr<PacketSink> sink,
                       std::size_t buffer_capacity =
                           DetachableInputStream::kDefaultCapacity);

  bool event_capable() const override { return true; }

  std::uint64_t packets_written() const noexcept {
    return packets_.load(std::memory_order_relaxed);
  }

  void register_metrics(obs::Scope scope) override;

 protected:
  void run() override;

  /// Event drive: batched FrameReader::poll() pulls, each frame delivered
  /// to the sink inline (sinks are non-blocking consumers by contract).
  /// EOF calls on_end() once, then kDone.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

 private:
  std::shared_ptr<PacketSink> sink_;
  std::atomic<std::uint64_t> packets_{0};
  // Event-mode state; loop-thread-only between event_start() and the final
  // drive.
  std::unique_ptr<util::FrameReader> ev_frames_;
  bool ev_ended_ = false;  // on_end() already delivered this run
};

/// Adapts a util::ReadyWatcher fire into a core::Scheduler re-drive —
/// the bridge that lets event-hosted byte endpoints watch any pollable
/// util::ByteSource/ByteSink (which cannot reference core::Scheduler from
/// the util layer). Fired possibly under the source/sink's lock: only
/// posts, per both contracts.
class IoReadyForwarder final : public util::ReadyWatcher {
 public:
  void bind(Scheduler* target) noexcept { target_ = target; }
  void on_io_ready() override {
    if (target_ != nullptr) target_->on_readable();
  }

 private:
  Scheduler* target_ = nullptr;
};

/// Byte-oriented reader endpoint over any util::ByteSource (the paper's
/// EndPointStreamReader): file, in-memory buffer, generator.
class ByteReaderEndpoint final : public Filter {
 public:
  ByteReaderEndpoint(std::string name, std::shared_ptr<util::ByteSource> source,
                     std::size_t chunk = 4096,
                     std::size_t buffer_capacity =
                         DetachableInputStream::kDefaultCapacity);

  /// Event-hostable only over a pollable source (a blocking one keeps the
  /// thread shim via start_on's fallback).
  bool event_capable() const override { return source_->pollable(); }

 protected:
  void run() override;

  /// Event drive: poll the source into the recycled chunk buffer, push it
  /// downstream with try_write_some, park the unwritten suffix on
  /// backpressure (input is not consumed while anything is parked). EOF
  /// drains the park, then kDone — like run() returning.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

 private:
  bool flush_ev_parked();

  std::shared_ptr<util::ByteSource> source_;
  std::size_t chunk_;
  // Event-mode state; loop-thread-only between the first drive and the
  // final one (the chunk buffer is acquired lazily ON the loop thread so
  // it comes from — and returns to — the worker's arena).
  IoReadyForwarder ev_watch_;
  util::Bytes ev_buf_;
  std::size_t ev_off_ = 0;  // written prefix of the parked ev_buf_
  bool ev_parked_ = false;
};

/// Byte-oriented writer endpoint over any util::ByteSink.
class ByteWriterEndpoint final : public Filter {
 public:
  ByteWriterEndpoint(std::string name, std::shared_ptr<util::ByteSink> sink,
                     std::size_t buffer_capacity =
                         DetachableInputStream::kDefaultCapacity);

  /// Event-hostable only over a pollable sink.
  bool event_capable() const override { return sink_->pollable(); }

 protected:
  void run() override;

  /// Event drive: batched poll_read_borrow pulls from the chain, pushed
  /// into the sink with try_write_some; a short sink write parks the
  /// suffix until the sink's ready watcher fires. EOF flushes, then kDone.
  Drive on_ready() override;
  void event_start() override;
  void event_stop() override;

 private:
  bool flush_ev_parked();

  std::shared_ptr<util::ByteSink> sink_;
  // Event-mode state; loop-thread-only (see ByteReaderEndpoint).
  IoReadyForwarder ev_watch_;
  util::Bytes ev_buf_;
  std::size_t ev_off_ = 0;
  bool ev_parked_ = false;
};

/// In-memory packet source backed by a queue; push() feeds the endpoint,
/// finish() ends the stream. Used heavily by tests and examples.
class QueuePacketSource final : public PacketSource {
 public:
  std::optional<util::Bytes> next_packet() override;
  void interrupt() override;

  bool pollable() const override { return true; }
  std::optional<util::Bytes> poll_packet(bool* finished) override;
  void set_scheduler(Scheduler* sched) override;

  void push(util::Bytes packet);
  void finish();

 private:
  /// Fires the armed scheduler (one-shot) under mu_; push()/finish() call
  /// this so an event-hosted consumer wakes exactly like a parked thread.
  void fire_readable_locked() RW_REQUIRES(mu_);

  rw::Mutex mu_{"core/packet_queue", rw::lockrank::kPacketQueue};
  rw::CondVar cv_;
  std::deque<util::Bytes> queue_ RW_GUARDED_BY(mu_);
  bool finished_ RW_GUARDED_BY(mu_) = false;
  int waiters_ RW_GUARDED_BY(mu_) = 0;  // consumers parked in next_packet()
  Scheduler* sched_ RW_GUARDED_BY(mu_) = nullptr;
  bool sched_armed_ RW_GUARDED_BY(mu_) = false;  // one-shot, armed by poll
};

/// In-memory packet sink collecting everything it receives.
class CollectingPacketSink final : public PacketSink {
 public:
  void deliver(util::ByteSpan packet) override;
  void on_end() override;

  /// Blocks until at least n packets arrived or the stream ended.
  bool wait_for(std::size_t n, std::int64_t timeout_ms = 10'000);
  /// Blocks until the stream ends.
  bool wait_end(std::int64_t timeout_ms = 10'000);

  std::vector<util::Bytes> packets() const;
  std::size_t count() const;
  bool ended() const;

 private:
  mutable rw::Mutex mu_{"core/packet_collector", rw::lockrank::kPacketCollector};
  rw::CondVar cv_;
  std::vector<util::Bytes> packets_ RW_GUARDED_BY(mu_);
  bool ended_ RW_GUARDED_BY(mu_) = false;
  int waiters_ RW_GUARDED_BY(mu_) = 0;  // threads parked in wait_for/wait_end
};

}  // namespace rapidware::core
