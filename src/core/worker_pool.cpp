#include "core/worker_pool.h"

#include <cstdlib>
#include <stdexcept>

namespace rapidware::core {

WorkerPool::WorkerPool(std::size_t workers) {
  if (workers == 0) {
    if (const char* env = std::getenv("RW_WORKERS")) {
      workers = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  loops_.reserve(workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([loop = loops_[i].get()] { loop->run(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

EventLoop& WorkerPool::next() {
  EventLoop* loop = try_next();
  if (loop == nullptr) {
    throw std::logic_error(
        "WorkerPool::next: pool is stopped; a stopped loop never drives "
        "again (place the chain before stop(), or use try_next)");
  }
  return *loop;
}

EventLoop* WorkerPool::try_next() {
  // Acquire pairs with the release exchange in stop(): placement observed
  // after the flag is set must not hand out a loop whose thread is being
  // joined. (The old round-robin fetch_add also mutated shared state for
  // callers that then discarded the loop; the load scan is read-only.)
  if (stopped_.load(std::memory_order_acquire)) return nullptr;
  EventLoop* best = loops_[0].get();
  double best_load = best->load();
  for (std::size_t i = 1; i < loops_.size(); ++i) {
    const double l = loops_[i]->load();
    if (l < best_load) {
      best = loops_[i].get();
      best_load = l;
    }
  }
  return best;
}

void WorkerPool::bind_metrics(obs::Registry& reg, const std::string& prefix) {
  scope_.emplace(reg, prefix);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    const obs::Scope w = scope_->child("worker/" + std::to_string(i));
    EventLoop* loop = loops_[i].get();
    // Callback gauges over relaxed atomics: a STATS snapshot reads live
    // load without touching any loop or pool mutex.
    w.callback("tasks_run", [loop] {
      return static_cast<double>(loop->tasks_run());
    });
    w.callback("queue_depth", [loop] {
      return static_cast<double>(loop->queue_depth());
    });
    w.callback("busy", [loop] { return loop->busy_fraction(); });
  }
}

void WorkerPool::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // Unpublish before the loops die: Scope::drop() blocks out in-flight
  // snapshots, so no callback can read a loop mid-teardown.
  if (scope_.has_value()) {
    scope_->drop();
    scope_.reset();
  }
  for (auto& loop : loops_) loop->stop();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();  // rw-lint: allow(RW008) control-plane shutdown, loops already asked to stop
  }
}

WorkerPool& default_worker_pool() {
  static WorkerPool pool;
  static const bool bound = [] {
    pool.bind_metrics(obs::registry(), "workers");
    return true;
  }();
  (void)bound;
  return pool;
}

}  // namespace rapidware::core
