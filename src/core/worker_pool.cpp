#include "core/worker_pool.h"

#include <cstdlib>

namespace rapidware::core {

WorkerPool::WorkerPool(std::size_t workers) {
  if (workers == 0) {
    if (const char* env = std::getenv("RW_WORKERS")) {
      workers = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  loops_.reserve(workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([loop = loops_[i].get()] { loop->run(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

EventLoop& WorkerPool::next() {
  const std::size_t i =
      rr_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  return *loops_[i];
}

void WorkerPool::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& loop : loops_) loop->stop();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();  // rw-lint: allow(RW008) control-plane shutdown, loops already asked to stop
  }
}

WorkerPool& default_worker_pool() {
  static WorkerPool pool;
  return pool;
}

}  // namespace rapidware::core
