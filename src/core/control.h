// Proxy control protocol — the wire interface between the ControlManager
// (administration client, Section 4) and a proxy's filter chain.
//
// The protocol is transport-agnostic: ControlServer turns a request byte
// blob into a response byte blob; bindings (in-process call, datagram
// service in src/proxy) carry the blobs. ControlManager is the typed client
// over any such transport, replacing the paper's Swing GUI with a
// programmatic API that exposes the same operations: query configuration,
// insert/remove/reorder filters, tune parameters, and upload new filter
// definitions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "core/flow_classifier.h"
#include "obs/metrics.h"
#include "util/bytes.h"

namespace rapidware::core {

enum class ControlOp : std::uint8_t {
  kListChain = 1,    // -> FilterInfo list
  kListAvailable = 2,// -> registry names
  kInsert = 3,       // spec + position
  kRemove = 4,       // position
  kReorder = 5,      // from + to
  kSetParam = 6,     // position + key + value
  kUpload = 7,       // alias name + base spec
  kStats = 8,        // scope prefix -> metrics text (v2)
  kRuleAdd = 9,      // blob(FlowRule): add/replace a classifier rule (v3)
  kRuleDel = 10,     // rule name (v3)
  kRuleList = 11,    // -> FlowRule list in match order (v3)
};

/// Protocol version, reported as the first "proto_version=N" line of every
/// STATS response. Compatibility rule (docs/control_protocol.md): existing
/// op encodings are frozen; new capability = new op tag; a server answers an
/// op it does not know with the error "unknown control op", which is how an
/// older server tells a newer client to back off.
///   v1: ops 1-7.
///   v2: adds kStats.
///   v3: adds kRuleAdd/kRuleDel/kRuleList (per-flow rule table).
inline constexpr int kControlProtocolVersion = 3;

/// Snapshot of one configured filter, as reported by kListChain.
struct FilterInfo {
  std::string name;
  std::string description;
  ParamMap params;

  bool operator==(const FilterInfo&) const = default;
};

/// Raw request/response encoding helpers (exposed for tests).
namespace wire {
util::Bytes ok_response(util::ByteSpan payload = {});
util::Bytes error_response(const std::string& message);
}  // namespace wire

/// Server side: applies control requests to a chain + registry. kStats
/// serves snapshots of `metrics` (default: the process-global registry,
/// which is where Proxy publishes everything).
class ControlServer {
 public:
  ControlServer(std::shared_ptr<FilterChain> chain,
                FilterRegistry* registry = &global_registry(),
                obs::Registry* metrics = &obs::registry());

  /// Attaches the per-flow rule table the v3 RULE_* verbs operate on. A
  /// server without a classifier answers them with an error (the same
  /// degrade-cleanly path as an older server). Not owned; must outlive the
  /// server.
  void set_classifier(FlowClassifier* classifier);

  /// Called after every successful RULE_ADD / RULE_DEL, outside any
  /// classifier lock — the hook a proxy uses to re-resolve its live flows
  /// (docs/flow_classification.md, "Live updates").
  void on_rules_changed(std::function<void()> hook);

  /// Decodes, executes, and answers one request. Never throws: failures are
  /// reported in the response.
  util::Bytes handle(util::ByteSpan request);

 private:
  util::Bytes dispatch(util::ByteSpan request);

  std::shared_ptr<FilterChain> chain_;
  FilterRegistry* registry_;
  obs::Registry* metrics_;
  FlowClassifier* classifier_ = nullptr;
  std::function<void()> rules_changed_;
};

/// Thrown by ControlManager when the server reports an error.
class ControlError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Client side. The transport maps a request blob to a response blob —
/// a direct call into ControlServer::handle, or a network round trip.
class ControlManager {
 public:
  using Transport = std::function<util::Bytes(util::ByteSpan)>;

  explicit ControlManager(Transport transport);

  /// Convenience: manager wired straight to an in-process server.
  static ControlManager local(std::shared_ptr<ControlServer> server);

  std::vector<FilterInfo> list_chain();
  std::vector<std::string> list_available();
  void insert(const FilterSpec& spec, std::size_t pos);
  void remove(std::size_t pos);
  void reorder(std::size_t from, std::size_t to);
  void set_param(std::size_t pos, const std::string& key,
                 const std::string& value);
  /// Uploads a third-party filter definition (alias over registered
  /// primitives); afterwards insert() accepts the new name.
  void upload(const std::string& name, const FilterSpec& base);

  /// v3 rule-table verbs. Servers without a classifier (or pre-v3 servers)
  /// answer with an error, surfaced here as ControlError.
  void rule_add(const FlowRule& rule);
  void rule_del(const std::string& name);
  std::vector<FlowRule> rule_list();

  /// STATS: the raw "name=value\n" metrics dump for `scope` (empty: all
  /// metrics). The first line is always "proto_version=N".
  std::string stats_text(const std::string& scope = "");

  /// STATS, parsed: (name, value) pairs in server (name-sorted) order,
  /// including the proto_version pseudo-entry.
  std::vector<std::pair<std::string, std::string>> stats(
      const std::string& scope = "");

  /// Renders the chain configuration as a one-line summary, e.g.
  /// "[wired-rx] -> fec-enc(6,4) -> throttle -> [wireless-tx]".
  std::string render_chain(const std::string& head = "in",
                           const std::string& tail = "out");

 private:
  util::Bytes roundtrip(util::ByteSpan request);

  Transport transport_;
};

}  // namespace rapidware::core
