#include "core/control.h"

#include <sstream>

#include "util/serial.h"

namespace rapidware::core {
namespace wire {

util::Bytes ok_response(util::ByteSpan payload) {
  util::Writer w;
  w.u8(1);
  w.raw(payload);
  return w.take();
}

util::Bytes error_response(const std::string& message) {
  util::Writer w;
  w.u8(0);
  w.str(message);
  return w.take();
}

}  // namespace wire

ControlServer::ControlServer(std::shared_ptr<FilterChain> chain,
                             FilterRegistry* registry, obs::Registry* metrics)
    : chain_(std::move(chain)), registry_(registry), metrics_(metrics) {
  if (!chain_ || registry_ == nullptr || metrics_ == nullptr) {
    throw std::invalid_argument("ControlServer: null chain or registry");
  }
}

void ControlServer::set_classifier(FlowClassifier* classifier) {
  classifier_ = classifier;
}

void ControlServer::on_rules_changed(std::function<void()> hook) {
  rules_changed_ = std::move(hook);
}

util::Bytes ControlServer::handle(util::ByteSpan request) {
  try {
    return dispatch(request);
  } catch (const std::exception& e) {
    return wire::error_response(e.what());
  }
}

util::Bytes ControlServer::dispatch(util::ByteSpan request) {
  util::Reader r(request);
  const auto op = static_cast<ControlOp>(r.u8());
  switch (op) {
    case ControlOp::kListChain: {
      util::Writer w;
      // One atomic snapshot: size() followed by at(i) re-acquires the chain
      // mutex per call, and a remove() landing between the two made the
      // stats path answer "bad position" for a request that was valid when
      // it started.
      const auto filters = chain_->list();
      w.u32(static_cast<std::uint32_t>(filters.size()));
      for (const auto& f : filters) {
        w.str(f->name());
        w.str(f->describe());
        const ParamMap params = f->params();
        w.u32(static_cast<std::uint32_t>(params.size()));
        for (const auto& [k, v] : params) {
          w.str(k);
          w.str(v);
        }
      }
      return wire::ok_response(w.bytes());
    }
    case ControlOp::kListAvailable: {
      util::Writer w;
      const auto names = registry_->names();
      w.u32(static_cast<std::uint32_t>(names.size()));
      for (const auto& name : names) w.str(name);
      return wire::ok_response(w.bytes());
    }
    case ControlOp::kInsert: {
      const util::Bytes blob = r.blob();
      const auto pos = r.u32();
      const FilterSpec spec = FilterSpec::deserialize(blob);
      chain_->insert(registry_->create(spec), pos);
      return wire::ok_response();
    }
    case ControlOp::kRemove: {
      chain_->remove(r.u32());
      return wire::ok_response();
    }
    case ControlOp::kReorder: {
      const auto from = r.u32();
      const auto to = r.u32();
      chain_->reorder(from, to);
      return wire::ok_response();
    }
    case ControlOp::kSetParam: {
      const auto pos = r.u32();
      const std::string key = r.str();
      const std::string value = r.str();
      if (!chain_->set_param(pos, key, value)) {
        return wire::error_response("set_param rejected: " + key);
      }
      return wire::ok_response();
    }
    case ControlOp::kUpload: {
      std::string alias = r.str();
      const FilterSpec base = FilterSpec::deserialize(r.blob());
      registry_->register_alias(std::move(alias), base);
      return wire::ok_response();
    }
    case ControlOp::kStats: {
      const std::string prefix = r.str();
      std::string text =
          "proto_version=" + std::to_string(kControlProtocolVersion) + "\n";
      text += obs::render(metrics_->snapshot(prefix));
      util::Writer w;
      w.str(text);
      return wire::ok_response(w.bytes());
    }
    case ControlOp::kRuleAdd: {
      if (classifier_ == nullptr) {
        return wire::error_response("no flow classifier");
      }
      classifier_->add_rule(FlowRule::deserialize(r.blob()));
      if (rules_changed_) rules_changed_();
      return wire::ok_response();
    }
    case ControlOp::kRuleDel: {
      if (classifier_ == nullptr) {
        return wire::error_response("no flow classifier");
      }
      const std::string name = r.str();
      if (!classifier_->remove_rule(name)) {
        return wire::error_response("unknown rule: " + name);
      }
      if (rules_changed_) rules_changed_();
      return wire::ok_response();
    }
    case ControlOp::kRuleList: {
      if (classifier_ == nullptr) {
        return wire::error_response("no flow classifier");
      }
      util::Writer w;
      const auto rules = classifier_->rules();
      w.u32(static_cast<std::uint32_t>(rules.size()));
      for (const FlowRule& rule : rules) w.blob(rule.serialize());
      return wire::ok_response(w.bytes());
    }
  }
  return wire::error_response("unknown control op");
}

ControlManager::ControlManager(Transport transport)
    : transport_(std::move(transport)) {
  if (!transport_) throw std::invalid_argument("ControlManager: null transport");
}

ControlManager ControlManager::local(std::shared_ptr<ControlServer> server) {
  return ControlManager([server = std::move(server)](util::ByteSpan request) {
    return server->handle(request);
  });
}

util::Bytes ControlManager::roundtrip(util::ByteSpan request) {
  util::Bytes response = transport_(request);
  util::Reader r(response);
  if (r.u8() == 1) {
    return r.raw(r.remaining());
  }
  throw ControlError(r.str());
}

std::vector<FilterInfo> ControlManager::list_chain() {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kListChain));
  const util::Bytes payload = roundtrip(req.bytes());
  util::Reader r(payload);
  std::vector<FilterInfo> out(r.u32());
  for (auto& info : out) {
    info.name = r.str();
    info.description = r.str();
    const std::uint32_t np = r.u32();
    for (std::uint32_t i = 0; i < np; ++i) {
      std::string k = r.str();
      info.params[k] = r.str();
    }
  }
  return out;
}

std::vector<std::string> ControlManager::list_available() {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kListAvailable));
  const util::Bytes payload = roundtrip(req.bytes());
  util::Reader r(payload);
  std::vector<std::string> out(r.u32());
  for (auto& name : out) name = r.str();
  return out;
}

void ControlManager::insert(const FilterSpec& spec, std::size_t pos) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kInsert));
  req.blob(spec.serialize());
  req.u32(static_cast<std::uint32_t>(pos));
  roundtrip(req.bytes());
}

void ControlManager::remove(std::size_t pos) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kRemove));
  req.u32(static_cast<std::uint32_t>(pos));
  roundtrip(req.bytes());
}

void ControlManager::reorder(std::size_t from, std::size_t to) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kReorder));
  req.u32(static_cast<std::uint32_t>(from));
  req.u32(static_cast<std::uint32_t>(to));
  roundtrip(req.bytes());
}

void ControlManager::set_param(std::size_t pos, const std::string& key,
                               const std::string& value) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kSetParam));
  req.u32(static_cast<std::uint32_t>(pos));
  req.str(key);
  req.str(value);
  roundtrip(req.bytes());
}

void ControlManager::upload(const std::string& name, const FilterSpec& base) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kUpload));
  req.str(name);
  req.blob(base.serialize());
  roundtrip(req.bytes());
}

void ControlManager::rule_add(const FlowRule& rule) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kRuleAdd));
  req.blob(rule.serialize());
  roundtrip(req.bytes());
}

void ControlManager::rule_del(const std::string& name) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kRuleDel));
  req.str(name);
  roundtrip(req.bytes());
}

std::vector<FlowRule> ControlManager::rule_list() {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kRuleList));
  const util::Bytes payload = roundtrip(req.bytes());
  util::Reader r(payload);
  const std::uint32_t count = r.u32();
  std::vector<FlowRule> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(FlowRule::deserialize(r.blob()));
  }
  return out;
}

std::string ControlManager::stats_text(const std::string& scope) {
  util::Writer req;
  req.u8(static_cast<std::uint8_t>(ControlOp::kStats));
  req.str(scope);
  const util::Bytes payload = roundtrip(req.bytes());
  util::Reader r(payload);
  return r.str();
}

std::vector<std::pair<std::string, std::string>> ControlManager::stats(
    const std::string& scope) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream is(stats_text(scope));
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    out.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return out;
}

std::string ControlManager::render_chain(const std::string& head,
                                         const std::string& tail) {
  std::ostringstream os;
  os << "[" << head << "]";
  for (const auto& info : list_chain()) os << " -> " << info.description;
  os << " -> [" << tail << "]";
  return os.str();
}

}  // namespace rapidware::core
