#include "core/detachable_stream.h"

#include <chrono>

#include "obs/metrics.h"  // for the RW_OBS_ENABLED compile-out switch

namespace rapidware::core {

using detail::InputState;

// ---------------------------------------------------------------------------
// DetachableInputStream

DetachableInputStream::DetachableInputStream(std::size_t capacity)
    : st_(std::make_shared<InputState>(capacity)) {}

DetachableInputStream::~DetachableInputStream() { close(); }

std::size_t DetachableInputStream::read_some(util::MutableByteSpan out) {
  if (out.empty()) return 0;
  rw::MutexLock lk(st_->mu);
  for (;;) {
    if (!st_->ring.empty()) {
      const std::size_t n = st_->ring.read(out);
      st_->bytes_out += n;
      st_->notify_data_writable();
      if (st_->ring.empty()) st_->notify_drained();
      return n;
    }
    if (st_->write_closed || st_->soft_eof || st_->reader_closed) return 0;
    // Buffer empty: tell any pauser, then wait for data or a state change.
    st_->notify_drained();
    ++st_->readers_waiting;
    st_->readable.wait(st_->mu, [st = st_.get()] {
      st->mu.assert_held();
      return !st->ring.empty() || st->write_closed || st->soft_eof ||
             st->reader_closed;
    });
    --st_->readers_waiting;
  }
}

std::size_t DetachableInputStream::read_borrow(std::size_t max,
                                               util::SpanVisitor visit) {
  rw::MutexLock lk(st_->mu);
  for (;;) {
    if (!st_->ring.empty()) {
      auto spans = st_->ring.read_spans();
      if (max != 0 && max < spans[0].size() + spans[1].size()) {
        if (max <= spans[0].size()) {
          spans[0] = spans[0].first(max);
          spans[1] = {};
        } else {
          spans[1] = spans[1].first(max - spans[0].size());
        }
      }
      // The visitor runs under st_->mu; it sees the ring's storage in
      // place and must not call back into this stream (documented).
      const std::size_t consumed = visit(spans[0], spans[1]);
      if (consumed == 0) {
        // Distinguishable from EOF only by erroring: a zero return here
        // would falsely signal end-of-stream to the caller.
        throw StreamError("DIS::read_borrow: visitor made no progress");
      }
      if (consumed > spans[0].size() + spans[1].size()) {
        throw StreamError("DIS::read_borrow: visitor over-consumed");
      }
      st_->ring.consume(consumed);
      st_->bytes_out += consumed;
      st_->notify_data_writable();
      if (st_->ring.empty()) st_->notify_drained();
      return consumed;
    }
    if (st_->write_closed || st_->soft_eof || st_->reader_closed) return 0;
    st_->notify_drained();
    ++st_->readers_waiting;
    st_->readable.wait(st_->mu, [st = st_.get()] {
      st->mu.assert_held();
      return !st->ring.empty() || st->write_closed || st->soft_eof ||
             st->reader_closed;
    });
    --st_->readers_waiting;
  }
}

std::size_t DetachableInputStream::poll_read_borrow(std::size_t max,
                                                    util::SpanVisitor visit,
                                                    bool* end) {
  *end = false;
  rw::MutexLock lk(st_->mu);
  if (!st_->ring.empty()) {
    auto spans = st_->ring.read_spans();
    if (max != 0 && max < spans[0].size() + spans[1].size()) {
      if (max <= spans[0].size()) {
        spans[0] = spans[0].first(max);
        spans[1] = {};
      } else {
        spans[1] = spans[1].first(max - spans[0].size());
      }
    }
    const std::size_t consumed = visit(spans[0], spans[1]);
    if (consumed == 0) {
      throw StreamError("DIS::poll_read_borrow: visitor made no progress");
    }
    if (consumed > spans[0].size() + spans[1].size()) {
      throw StreamError("DIS::poll_read_borrow: visitor over-consumed");
    }
    st_->ring.consume(consumed);
    st_->bytes_out += consumed;
    st_->notify_data_writable();
    if (st_->ring.empty()) st_->notify_drained();
    return consumed;
  }
  if (st_->write_closed || st_->soft_eof || st_->reader_closed) {
    *end = true;
    return 0;
  }
  // Empty but open: report would-block. Tell a pending pauser the buffer is
  // drained (exactly like the blocking paths), then arm the watcher so the
  // next arrival — or EOF/splice — re-drives the owner.
  st_->notify_drained();
  if (st_->read_sched != nullptr) st_->read_armed = true;
  return 0;
}

void DetachableInputStream::set_read_scheduler(Scheduler* sched) {
  rw::MutexLock lk(st_->mu);
  st_->read_sched = sched;
  if (sched == nullptr) st_->read_armed = false;
}

std::size_t DetachableInputStream::available() const {
  rw::MutexLock lk(st_->mu);
  return st_->ring.size();
}

bool DetachableInputStream::connected() const {
  rw::MutexLock lk(st_->mu);
  return st_->connected;
}

void DetachableInputStream::pause() {
  DetachableOutputStream* src = nullptr;
  {
    rw::MutexLock lk(st_->mu);
    src = st_->source;
  }
  if (src == nullptr) throw StreamError("DIS::pause: not connected");
  src->pause();
}

void DetachableInputStream::reconnect(DetachableOutputStream& dos) {
  dos.reconnect(*this);
}

void DetachableInputStream::close() {
  rw::MutexLock lk(st_->mu);
  st_->reader_closed = true;
  st_->connected = false;
  st_->wake_all();
}

void DetachableInputStream::mark_soft_eof() {
  rw::MutexLock lk(st_->mu);
  st_->soft_eof = true;
  st_->readable.notify_all();
  st_->fire_readable();  // event-hosted owner must drain and observe EOF
}

std::uint64_t DetachableInputStream::bytes_received() const {
  rw::MutexLock lk(st_->mu);
  return st_->bytes_in;
}

std::uint64_t DetachableInputStream::bytes_delivered() const {
  rw::MutexLock lk(st_->mu);
  return st_->bytes_out;
}

std::uint64_t DetachableInputStream::wakeups() const {
  rw::MutexLock lk(st_->mu);
  return st_->wakeups;
}

std::uint64_t DetachableInputStream::wakeups_suppressed() const {
  rw::MutexLock lk(st_->mu);
  return st_->wakeups_suppressed;
}

// ---------------------------------------------------------------------------
// DetachableOutputStream

DetachableOutputStream::~DetachableOutputStream() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw (C++ Core Guidelines C.36).
  }
}

void DetachableOutputStream::writer_done() {
  rw::MutexLock lk(mu_);
  --active_writers_;
  // Only a pause() (or close-time barrier) ever waits on writers_cv_, and
  // it registers itself first — so the per-write notify is skipped in
  // steady state instead of paying a futex syscall per packet.
  if (pause_waiters_ > 0) writers_cv_.notify_all();
}

void DetachableOutputStream::write(util::ByteSpan in) {
  const util::ByteSpan segments[1] = {in};
  write_segments(segments);
}

void DetachableOutputStream::write_vec(
    std::span<const util::ByteSpan> segments) {
  write_segments(segments);
}

void DetachableOutputStream::write_segments(
    std::span<const util::ByteSpan> segments) {
  std::shared_ptr<InputState> st;
  {
    rw::MutexLock lk(mu_);
    const auto ready = [this] {
      mu_.assert_held();
      return closed_ || (connected_ && !swflag_);
    };
    if (!ready()) {
      // Only time the wait when it actually blocks: the fast path must not
      // read the clock (overhead contract in src/obs/metrics.h).
#if RW_OBS_ENABLED
      const auto t0 = std::chrono::steady_clock::now();
#endif
      state_cv_.wait(mu_, ready);
#if RW_OBS_ENABLED
      blocked_us_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
#endif
    }
    if (closed_) throw BrokenPipe("DOS::write: stream closed");
    st = sink_;
    ++active_writers_;
  }
  // Deliver every segment, back to back, to this one sink. pause() waits
  // for us, so the logical (possibly vectored) write is never split across
  // two different sinks and no splice lands between segments.
  try {
    rw::MutexLock slk(st->mu);
    for (util::ByteSpan seg : segments) {
      while (!seg.empty()) {
        if (st->ring.full()) {
          ++st->writers_waiting;
          st->writable.wait(st->mu, [st = st.get()] {
            st->mu.assert_held();
            return st->reader_closed || st->write_closed || !st->ring.full();
          });
          --st->writers_waiting;
        }
        if (st->reader_closed) {
          throw BrokenPipe("DOS::write: reader closed the stream");
        }
        if (st->write_closed) {
          // close() ran while this write was blocked on a full ring; without
          // this check the writer would sleep forever once the reader stops
          // draining (close-while-blocked).
          throw BrokenPipe("DOS::write: stream closed during write");
        }
        const std::size_t n = st->ring.write(seg);
        seg = seg.subspan(n);
        st->bytes_in += n;
#if RW_OBS_ENABLED
        bytes_sent_.fetch_add(n, std::memory_order_relaxed);
#endif
        st->notify_data_readable();
      }
    }
  } catch (...) {
    writer_done();
    throw;
  }
  writer_done();
}

void DetachableOutputStream::flush() {
  std::shared_ptr<InputState> st;
  {
    rw::MutexLock lk(mu_);
    st = sink_;
  }
  if (st) {
    rw::MutexLock slk(st->mu);
    st->readable.notify_all();
    st->fire_readable();
  }
}

bool DetachableOutputStream::try_write_vec(
    std::span<const util::ByteSpan> segments) {
  std::size_t total = 0;
  for (const util::ByteSpan seg : segments) total += seg.size();
  rw::MutexLock lk(mu_);
  if (closed_) throw BrokenPipe("DOS::try_write: stream closed");
  if (!connected_ || swflag_) {
    // Mid-splice or never connected: arm at this DOS — there is no sink
    // whose reader could fire us; reconnect()/close() will.
    if (write_sched_ != nullptr) write_armed_ = true;
    return false;
  }
  const std::shared_ptr<InputState>& st = sink_;
  // Lock order: DOS::mu_ before InputState::mu (always). Holding mu_ for
  // the whole transaction keeps pause() out until every segment landed.
  rw::MutexLock slk(st->mu);
  if (st->reader_closed) {
    throw BrokenPipe("DOS::try_write: reader closed the stream");
  }
  if (st->write_closed) {
    throw BrokenPipe("DOS::try_write: stream closed during write");
  }
  if (total > st->ring.capacity()) {
    // All-or-nothing can never succeed: waiting for space that cannot
    // exist would park the chain forever.
    throw StreamError("DOS::try_write_vec: write larger than ring capacity");
  }
  if (st->ring.free_space() < total) {
    if (st->write_sched != nullptr) st->write_armed = true;
    return false;
  }
  for (const util::ByteSpan seg : segments) {
    st->ring.write(seg);
    st->bytes_in += seg.size();
  }
#if RW_OBS_ENABLED
  bytes_sent_.fetch_add(total, std::memory_order_relaxed);
#endif
  st->notify_data_readable();
  return true;
}

std::size_t DetachableOutputStream::try_write_some(util::ByteSpan in) {
  rw::MutexLock lk(mu_);
  if (closed_) throw BrokenPipe("DOS::try_write: stream closed");
  if (!connected_ || swflag_) {
    if (write_sched_ != nullptr) write_armed_ = true;
    return 0;
  }
  const std::shared_ptr<InputState>& st = sink_;
  rw::MutexLock slk(st->mu);
  if (st->reader_closed) {
    throw BrokenPipe("DOS::try_write: reader closed the stream");
  }
  if (st->write_closed) {
    throw BrokenPipe("DOS::try_write: stream closed during write");
  }
  const std::size_t n = st->ring.write(in);
  if (n > 0) {
    st->bytes_in += n;
#if RW_OBS_ENABLED
    bytes_sent_.fetch_add(n, std::memory_order_relaxed);
#endif
    st->notify_data_readable();
  }
  if (n < in.size() && st->write_sched != nullptr) st->write_armed = true;
  return n;
}

void DetachableOutputStream::set_write_scheduler(Scheduler* sched) {
  rw::MutexLock lk(mu_);
  write_sched_ = sched;
  if (sched == nullptr) write_armed_ = false;
  if (sink_) {
    rw::MutexLock slk(sink_->mu);
    sink_->write_sched = sched;
    if (sched == nullptr) sink_->write_armed = false;
  }
}

void DetachableOutputStream::pause() {
  std::shared_ptr<InputState> st;
  {
    rw::MutexLock lk(mu_);
    if (closed_) throw StreamError("DOS::pause: stream closed");
    if (!connected_) {
      if (swflag_) return;  // already paused: idempotent
      throw StreamError("DOS::pause: not connected");
    }
    swflag_ = true;  // new writes now block in state_cv_
    st = sink_;
    {
      // Lock order: DOS::mu_ before InputState::mu (always).
      rw::MutexLock slk(st->mu);
      st->swflag = true;
      st->writable.notify_all();
      st->readable.notify_all();
      // An event-hosted reader must drain the ring so this pause can
      // complete; a hosted writer re-polls, sees swflag, and re-arms at
      // the DOS level where reconnect() will fire it.
      st->fire_readable();
      st->fire_writable();
    }
    // Let in-flight writes land in full. Register first so writer_done's
    // suppressed notify fires for us.
    ++pause_waiters_;
    writers_cv_.wait(mu_, [this] {
      mu_.assert_held();
      return active_writers_ == 0;
    });
    --pause_waiters_;
    ++pauses_;
    connected_ = false;
    sink_.reset();
  }
  {
    // Wait for the reader to drain the buffer (the paper's checkBuf/wait).
    rw::MutexLock slk(st->mu);
    st->readable.notify_all();
    st->fire_readable();
    ++st->drain_waiting;
    st->drained.wait(st->mu, [st = st.get()] {
      st->mu.assert_held();
      return st->ring.empty() || st->reader_closed;
    });
    --st->drain_waiting;
    st->detach_source();
  }
}

void DetachableOutputStream::reconnect(DetachableInputStream& dis) {
  rw::MutexLock lk(mu_);
  if (closed_) throw StreamError("DOS::reconnect: stream closed");
  if (connected_) throw StreamError("DOS::reconnect: already connected");
  auto st = dis.st_;
  {
    rw::MutexLock slk(st->mu);
    if (st->connected) {
      throw StreamError("DOS::reconnect: sink already connected");
    }
    if (st->reader_closed) {
      throw StreamError("DOS::reconnect: sink reader closed");
    }
    st->source = this;
    st->connected = true;
    st->swflag = false;
    st->soft_eof = false;
    st->write_closed = false;
    // The writable watcher follows this DOS to its new sink; an armed
    // reader on the new sink may now have data (or a source to wait on)
    // and is re-driven to find out.
    st->write_sched = write_sched_;
    st->readable.notify_all();
    st->writable.notify_all();
    st->fire_readable();
    st->fire_writable();
  }
  sink_ = st;
  connected_ = true;
  swflag_ = false;
  state_cv_.notify_all();
  // A hosted writer that armed while we were detached can write again.
  fire_write_ready_locked();
}

void DetachableOutputStream::close() {
  std::shared_ptr<InputState> st;
  {
    rw::MutexLock lk(mu_);
    if (closed_) return;
    closed_ = true;
    st = sink_;
    sink_.reset();
    connected_ = false;
    state_cv_.notify_all();
    // A hosted writer armed at this DOS must observe BrokenPipe, not park.
    fire_write_ready_locked();
  }
  if (st) {
    rw::MutexLock slk(st->mu);
    st->write_closed = true;
    st->detach_source();
    st->wake_all();  // including an in-flight write blocked on space
  }
}

bool DetachableOutputStream::connected() const {
  rw::MutexLock lk(mu_);
  return connected_;
}

std::uint64_t DetachableOutputStream::bytes_sent() const noexcept {
  return bytes_sent_.load(std::memory_order_relaxed);
}

std::uint64_t DetachableOutputStream::pauses() const {
  rw::MutexLock lk(mu_);
  return pauses_;
}

std::uint64_t DetachableOutputStream::blocked_micros() const {
  rw::MutexLock lk(mu_);
  return blocked_us_;
}

void connect(DetachableOutputStream& dos, DetachableInputStream& dis) {
  dos.connect(dis);
}

}  // namespace rapidware::core
