// Chain-level filter specs and the flyweight spec table.
//
// A FilterSpec (core/filter_registry.h) describes ONE filter. A ChainSpec
// describes a whole chain configuration — the ordered list of filter specs a
// proxy should splice between its endpoints for some class of client. The
// paper composes proxies *per client situation* (FEC for the distant mobile
// host, compression for the slow link, passthrough for the wired member);
// ChainSpec is the declarative, serializable form of one such situation.
//
// At fleet scale the same few situations repeat across millions of flows, so
// ChainSpecs are interned: FilterSpecTable::intern returns a ref-counted
// pointer to an immutable ChainSpec, and structurally equal specs share one
// object. 10,000 flows resolved from 16 rules hold 16 ChainSpec objects and
// 10,000 shared_ptrs — per-flow cost is a pointer, not a chain-config copy
// (bench_flow_resolve asserts the pointer identity and the resolve cost).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/filter_registry.h"
#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

/// Declarative description of a full chain configuration: a name (the
/// situation it serves, e.g. "fec-heavy") plus the ordered filter stages.
/// Value type; immutable once interned (FilterSpecTable hands out
/// shared_ptr<const ChainSpec> only).
struct ChainSpec {
  std::string name;
  std::vector<FilterSpec> stages;

  /// Wire form: str name · u32 count · count x blob(FilterSpec).
  util::Bytes serialize() const;
  static ChainSpec deserialize(util::ByteSpan in);

  /// "fec-heavy: fec-encode{k=1,n=2} -> interleave{}" ("passthrough" for an
  /// empty stage list).
  std::string render() const;

  bool operator==(const ChainSpec&) const = default;
};

/// Immutable, ref-counted handle to an interned ChainSpec. Pointer equality
/// of two refs from the same table implies (and is implied by) structural
/// equality of the specs — callers compare and cache by pointer.
using ChainSpecRef = std::shared_ptr<const ChainSpec>;

/// Flyweight interner for ChainSpecs. Thread-safe. Entries are keyed by the
/// spec's canonical serialized form (ParamMap is an ordered map, so equal
/// specs serialize identically).
class FilterSpecTable {
 public:
  /// Returns the shared immutable instance structurally equal to `spec`,
  /// creating it on first sight.
  ChainSpecRef intern(ChainSpec spec);

  /// Interned spec count (live table entries, referenced or not).
  std::size_t size() const;

  /// Drops entries no longer referenced outside the table; returns how many
  /// were purged. Call on rule-table shrink; never required for correctness.
  std::size_t purge_unreferenced();

  /// Intern cache telemetry: hits returned an existing instance.
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  mutable rw::Mutex mu_{"core/spec_table", rw::lockrank::kSpecTable};
  std::map<std::string, ChainSpecRef> interned_ RW_GUARDED_BY(mu_);
  std::uint64_t hits_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ RW_GUARDED_BY(mu_) = 0;
};

/// The process-wide spec table (what Proxy and FlowClassifier default to).
FilterSpecTable& global_spec_table();

/// Instantiates every stage of `spec` through `registry` (alias resolution
/// included), in chain order. Throws std::out_of_range on an unknown stage.
std::vector<std::shared_ptr<Filter>> instantiate_chain(
    const ChainSpec& spec, const FilterRegistry& registry);

}  // namespace rapidware::core
