#include "core/composability.h"

namespace rapidware::core {

bool type_satisfies(const std::string& requirement, const std::string& type) {
  // "any" on either side makes the check vacuous: an unconstrained filter
  // accepts everything, and an unknown stream cannot be proven mismatched.
  if (requirement == kAnyType || type == kAnyType) return true;
  if (requirement.size() > 3 &&
      requirement.compare(requirement.size() - 3, 3, "(*)") == 0) {
    const std::string prefix = requirement.substr(0, requirement.size() - 2);
    return type.size() > prefix.size() + 1 &&
           type.compare(0, prefix.size(), prefix) == 0 && type.back() == ')';
  }
  return requirement == type;
}

std::string wrap_type(const std::string& wrapper, const std::string& inner) {
  if (inner == kAnyType) return kAnyType;
  return wrapper + "(" + inner + ")";
}

std::optional<std::string> unwrap_type(const std::string& wrapper,
                                       const std::string& type) {
  if (type == kAnyType) return std::string(kAnyType);
  const std::string prefix = wrapper + "(";
  if (type.size() > prefix.size() + 0 &&
      type.compare(0, prefix.size(), prefix) == 0 && type.back() == ')') {
    return type.substr(prefix.size(), type.size() - prefix.size() - 1);
  }
  return std::nullopt;
}

std::optional<std::string> check_step(const std::string& filter_name,
                                      const std::string& requirement,
                                      const std::string& incoming_type) {
  if (type_satisfies(requirement, incoming_type)) return std::nullopt;
  return "filter '" + filter_name + "' requires stream type '" + requirement +
         "' but would receive '" + incoming_type + "'";
}

}  // namespace rapidware::core
