// FlowClassifier: per-flow filter-chain selection.
//
// The paper's central claim is that proxy filters compose *per client
// situation*: a distant mobile host gets FEC, a slow link gets compression,
// a wired member gets passthrough — all concurrently through one proxy.
// The classifier is the decision core that turns that into a data structure:
//
//   FlowKey (station, stream type, loss regime)
//     -> ordered FlowRule table (first match wins; priority, then insertion)
//       -> interned ChainSpecRef (flyweight: equal specs share one object)
//
// resolve() is designed to sit on the flow-setup path of a proxy serving
// millions of flows from thousands of rules: one mutex acquisition, one
// linear scan of the (small) rule table, one shared_ptr copy — measured at
// well under a microsecond by bench_flow_resolve, with the < 1 us/flow bound
// asserted. The rule table itself is live-updatable over control protocol
// v3 (RULE_ADD / RULE_DEL / RULE_LIST, core/control.h); version() lets
// flow tables detect a change and re-resolve existing flows (the ordering
// contract is documented in docs/flow_classification.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/filter_spec.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

/// Coarse channel condition a flow currently experiences. Derived from the
/// smoothed loss estimate an observer maintains (regime_for_loss); rules
/// match on it so chains follow the channel, not the other way round.
enum class LossRegime : std::uint8_t {
  kClean = 0,     // wired-grade: loss below the lossy threshold
  kDegraded = 1,  // lossy but recoverable: light FEC / compression territory
  kSevere = 2,    // deep fade or distant station: heavy FEC territory
};

const char* to_string(LossRegime regime);

/// Maps a smoothed loss fraction to a regime. Defaults align with the
/// FecPolicy ladder (raplets/fec_policy.h): 2% ends "clean", 15% is severe.
LossRegime regime_for_loss(double smoothed_loss, double degraded = 0.02,
                           double severe = 0.15);

/// What a flow IS, for classification: who (station), what (stream type),
/// and how the channel is doing (regime). Ordered so it can key flow maps.
struct FlowKey {
  std::uint32_t station = 0;
  std::string stream_type = "any";
  LossRegime regime = LossRegime::kClean;

  auto operator<=>(const FlowKey&) const = default;

  /// "station=7 type=audio regime=severe" — log/trace form.
  std::string render() const;
};

/// One row of the rule table. Match fields are optional: an unset field is
/// a wildcard; stations match against an inclusive [station_lo, station_hi]
/// range (set both to the same value for an exact match, either alone for a
/// half-open bound). A key matches when every set field accepts it.
struct FlowRule {
  std::string name;             // unique handle; RULE_DEL / replace key
  std::uint32_t priority = 100; // lower wins; ties resolve by insertion order
  std::optional<std::uint32_t> station_lo;
  std::optional<std::uint32_t> station_hi;
  std::optional<std::string> stream_type;
  std::optional<LossRegime> regime;
  ChainSpec chain;              // interned on add_rule

  bool matches(const FlowKey& key) const;

  /// Wire form for control protocol v3 (docs/control_protocol.md).
  util::Bytes serialize() const;
  static FlowRule deserialize(util::ByteSpan in);

  /// One-line table row, e.g.
  /// "lossy-audio prio=20 station=* type=audio regime=degraded -> fec-light".
  std::string render() const;

  bool operator==(const FlowRule&) const = default;
};

/// The ordered rule table. Thread-safe; mutations and resolution may race
/// freely (a resolve concurrent with a rule change sees either the old or
/// the new table, never a torn one).
class FlowClassifier {
 public:
  explicit FlowClassifier(FilterSpecTable* table = &global_spec_table());

  /// Inserts `rule` (its chain is interned first). A rule with the same
  /// name replaces the old one but keeps the ORIGINAL insertion order for
  /// priority ties, so a retune does not shuffle the table.
  void add_rule(FlowRule rule);

  /// Removes the named rule; false if absent.
  bool remove_rule(const std::string& name);

  /// Rules in match order (priority ascending, then insertion order).
  std::vector<FlowRule> rules() const;

  std::size_t size() const;

  /// Monotonic table version: bumps on every add/remove/set_fallback. Flow
  /// tables cache it to detect "rules changed since I resolved".
  std::uint64_t version() const;

  /// First-match resolution; the fallback spec when nothing matches.
  /// Never null. Hot path: see header comment.
  ChainSpecRef resolve(const FlowKey& key) const;

  /// The no-match result (default: an empty "passthrough" ChainSpec).
  ChainSpecRef fallback() const;
  void set_fallback(ChainSpec spec);

  /// Lifetime rule-hit count, by rule name (0 for unknown). Deterministic
  /// (plain counters, no clock) — the sim's pinned-hash runs read these.
  std::uint64_t hits(const std::string& rule_name) const;
  std::uint64_t fallback_hits() const;

  /// The table this classifier interns specs in.
  FilterSpecTable& spec_table() const noexcept { return *table_; }

  /// Publishes "rules" gauge, "resolve_us" histogram, "fallback_hits"
  /// counter, and per-rule "rule/<name>/hits" counters under `scope`.
  /// resolve() only reads the clock while a histogram is bound, so unbound
  /// classifiers stay deterministic. Re-binding replaces the previous scope.
  void bind_metrics(obs::Scope scope);

 private:
  struct Entry {
    FlowRule rule;
    ChainSpecRef spec;
    std::uint64_t order = 0;  // insertion sequence, breaks priority ties
    std::shared_ptr<obs::Counter> m_hits;  // bound lazily; may be null
  };

  void sort_entries_locked() RW_REQUIRES(mu_);
  void bind_entry_metrics_locked(Entry& entry) RW_REQUIRES(mu_);

  FilterSpecTable* const table_;  // set at construction, never reseated

  mutable rw::Mutex mu_{"core/flow_classifier", rw::lockrank::kFlowClassifier};
  std::vector<Entry> entries_ RW_GUARDED_BY(mu_);
  ChainSpecRef fallback_ RW_GUARDED_BY(mu_);
  std::uint64_t next_order_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t version_ RW_GUARDED_BY(mu_) = 0;
  // Lifetime hit counts keyed by rule name so they survive rule replacement.
  // Mutable: resolve() is logically const but keeps the ledgers (under mu_).
  mutable std::map<std::string, std::uint64_t> hit_counts_ RW_GUARDED_BY(mu_);
  mutable std::uint64_t fallback_hits_ RW_GUARDED_BY(mu_) = 0;
  std::optional<obs::Scope> scope_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Gauge> m_rules_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Histogram> m_resolve_us_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_fallback_hits_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::core
