// Filter upload machinery.
//
// The paper uploads serialized Java filter objects into a running proxy. In
// C++ we reproduce the behaviour with three pieces:
//
//   * FilterSpec     — a serializable description (factory name + parameter
//                      map) that travels over the control channel;
//   * FilterRegistry — maps factory names to construction functions; the
//                      proxy's set of *loadable* filter kinds;
//   * FilterContainer— the paper's container of uploaded Filter objects,
//                      holding constructed-but-not-yet-inserted filters and
//                      uploaded spec aliases (third-party "mobile" filters
//                      defined in terms of registered primitives).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

/// Serializable filter description: which factory, with which parameters.
struct FilterSpec {
  std::string name;
  ParamMap params;

  util::Bytes serialize() const;
  static FilterSpec deserialize(util::ByteSpan in);

  bool operator==(const FilterSpec&) const = default;
};

/// Named filter factories. Thread-safe.
class FilterRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<Filter>(const ParamMap& params)>;

  /// Registers a factory; replaces any existing one with the same name.
  void register_factory(std::string name, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Instantiates a filter; resolves uploaded aliases transitively.
  /// Throws std::out_of_range for unknown names.
  std::shared_ptr<Filter> create(const FilterSpec& spec) const;

  /// Registers an alias: `name` builds `base` with base.params overlaid by
  /// the instantiation params. This is how "uploaded" third-party filters
  /// are expressed (see header comment).
  void register_alias(std::string name, FilterSpec base);

 private:
  mutable rw::Mutex mu_{"core/filter_registry", rw::lockrank::kFilterRegistry};
  std::map<std::string, Factory> factories_ RW_GUARDED_BY(mu_);
  std::map<std::string, FilterSpec> aliases_ RW_GUARDED_BY(mu_);
};

/// Returns the process-wide registry pre-populated by the filter library
/// (each concrete filter registers itself at static-init time).
FilterRegistry& global_registry();

/// Holds Filter objects that have been uploaded/constructed but not yet
/// placed in a chain (the paper's FilterContainer).
class FilterContainer {
 public:
  void add(std::shared_ptr<Filter> filter);

  std::size_t size() const;

  /// The paper's String enumeration of filter names.
  std::vector<std::string> enumerate() const;

  /// Removes and returns the first filter with this name, or nullptr.
  std::shared_ptr<Filter> take(const std::string& name);

 private:
  mutable rw::Mutex mu_{"core/reconfig_bin", rw::lockrank::kReconfigBin};
  std::vector<std::shared_ptr<Filter>> filters_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::core
