#include "core/endpoint.h"

#include <chrono>
#include <stdexcept>

#include "util/buffer_pool.h"
#include "util/frame_reader.h"
#include "util/framing.h"

namespace rapidware::core {

std::optional<util::Bytes> PacketSource::poll_packet(bool* /*finished*/) {
  throw std::logic_error("packet source is not pollable");
}

PacketReaderEndpoint::PacketReaderEndpoint(std::string name,
                                           std::shared_ptr<PacketSource> source,
                                           std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), source_(std::move(source)) {}

void PacketReaderEndpoint::run() {
  for (;;) {
    auto packet = source_->next_packet();
    if (!packet) break;
    // Count before the frame becomes observable downstream: anyone who saw
    // the packet must also see it in the metric (STATS is a faithful view).
    packets_.fetch_add(1, std::memory_order_relaxed);
    util::write_frame(dos(), *packet);
    // The source's buffer is dead here; recycle it so pool-aware producers
    // (and downstream FrameReaders) stop hitting the allocator.
    util::default_pool().release(std::move(*packet));
  }
}

void PacketReaderEndpoint::event_start() {
  ev_parked_.reset();
  source_->set_scheduler(event_scheduler());
}

void PacketReaderEndpoint::event_stop() {
  source_->set_scheduler(nullptr);
  if (ev_parked_) {
    util::default_pool().release(std::move(*ev_parked_));
    ev_parked_.reset();
  }
}

Filter::Drive PacketReaderEndpoint::on_ready() {
  // Backpressure first: a parked payload must reach the ring before any new
  // packet, or frames would reorder.
  if (ev_parked_) {
    if (!util::try_write_frame(dos(), *ev_parked_)) return Drive::kIdle;
    util::default_pool().release(std::move(*ev_parked_));
    ev_parked_.reset();
  }
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool finished = false;
    auto packet = source_->poll_packet(&finished);
    // Exhausted means run() would have returned: kDone without closing the
    // DOS, so downstream stays connected (removal protocol).
    if (!packet) return finished ? Drive::kDone : Drive::kIdle;
    packets_.fetch_add(1, std::memory_order_relaxed);
    if (!util::try_write_frame(dos(), *packet)) {
      ev_parked_ = std::move(packet);
      return Drive::kIdle;
    }
    util::default_pool().release(std::move(*packet));
  }
  return Drive::kMore;
}

void PacketReaderEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_read()); });
}

PacketWriterEndpoint::PacketWriterEndpoint(std::string name,
                                           std::shared_ptr<PacketSink> sink,
                                           std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), sink_(std::move(sink)) {}

void PacketWriterEndpoint::run() {
  util::FrameReader frames(dis());
  for (;;) {
    auto packet = frames.next();
    if (!packet) break;
    // Count before delivery: a caller woken by the sink (e.g. wait_for(n))
    // must never read a metric that lags what the sink already handed out.
    packets_.fetch_add(1, std::memory_order_relaxed);
    sink_->deliver(*packet);
    util::default_pool().release(std::move(*packet));
  }
  sink_->on_end();
}

void PacketWriterEndpoint::event_start() {
  ev_frames_ = std::make_unique<util::FrameReader>(dis());
  ev_ended_ = false;
}

void PacketWriterEndpoint::event_stop() { ev_frames_.reset(); }

Filter::Drive PacketWriterEndpoint::on_ready() {
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    auto packet = ev_frames_->poll(&end);
    if (!packet) {
      if (!end) return Drive::kIdle;
      if (!ev_ended_) {
        ev_ended_ = true;
        sink_->on_end();
      }
      return Drive::kDone;
    }
    // Same ordering contract as run(): count before delivery.
    packets_.fetch_add(1, std::memory_order_relaxed);
    sink_->deliver(*packet);
    util::default_pool().release(std::move(*packet));
  }
  return Drive::kMore;
}

void PacketWriterEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_written()); });
}

ByteReaderEndpoint::ByteReaderEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSource> source,
                                       std::size_t chunk,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity),
      source_(std::move(source)),
      chunk_(chunk) {}

void ByteReaderEndpoint::run() {
  util::Bytes buf(chunk_);  // rw-lint: allow(RW006) one buffer, allocated before the loop and reused
  for (;;) {
    const std::size_t n = source_->read_some(buf);
    if (n == 0) break;
    dos().write(util::ByteSpan(buf.data(), n));
  }
}

ByteWriterEndpoint::ByteWriterEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSink> sink,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), sink_(std::move(sink)) {}

void ByteWriterEndpoint::run() {
  util::Bytes buf(4096);  // rw-lint: allow(RW006) one buffer, allocated before the loop and reused
  for (;;) {
    const std::size_t n = dis().read_some(buf);
    if (n == 0) break;
    sink_->write(util::ByteSpan(buf.data(), n));
  }
  sink_->flush();
}

std::optional<util::Bytes> QueuePacketSource::next_packet() {
  rw::MutexLock lk(mu_);
  if (queue_.empty() && !finished_) {
    ++waiters_;
    cv_.wait(mu_, [this] {
      mu_.assert_held();
      return finished_ || !queue_.empty();
    });
    --waiters_;
  }
  if (queue_.empty()) return std::nullopt;
  util::Bytes packet = std::move(queue_.front());
  queue_.pop_front();
  return packet;
}

void QueuePacketSource::interrupt() { finish(); }

std::optional<util::Bytes> QueuePacketSource::poll_packet(bool* finished) {
  rw::MutexLock lk(mu_);
  *finished = false;
  if (!queue_.empty()) {
    util::Bytes packet = std::move(queue_.front());
    queue_.pop_front();
    return packet;
  }
  if (finished_) {
    *finished = true;
    return std::nullopt;
  }
  // Would-block: arm the one-shot wakeup. push()/finish() fire it under
  // this same mutex, so the arm/fire pair serializes — no lost wakeups.
  if (sched_) sched_armed_ = true;
  return std::nullopt;
}

void QueuePacketSource::set_scheduler(Scheduler* sched) {
  rw::MutexLock lk(mu_);
  sched_ = sched;
  if (sched == nullptr) sched_armed_ = false;
}

void QueuePacketSource::fire_readable_locked() {
  mu_.assert_held();
  if (sched_ != nullptr && sched_armed_) {
    sched_armed_ = false;
    // Contract: on_readable only posts to a worker queue; it must not call
    // back into this source (mu_ is held).
    sched_->on_readable();
  }
}

void QueuePacketSource::push(util::Bytes packet) {
  rw::MutexLock lk(mu_);
  queue_.push_back(std::move(packet));
  // Single consumer; skip the notify syscall when it is not parked.
  if (waiters_ > 0) cv_.notify_one();
  fire_readable_locked();
}

void QueuePacketSource::finish() {
  {
    rw::MutexLock lk(mu_);
    finished_ = true;
    fire_readable_locked();
  }
  cv_.notify_all();
}

void CollectingPacketSink::deliver(util::ByteSpan packet) {
  rw::MutexLock lk(mu_);
  packets_.emplace_back(packet.begin(), packet.end());
  // wait_for(n) callers may be parked; skip the notify when none are.
  if (waiters_ > 0) cv_.notify_all();
}

void CollectingPacketSink::on_end() {
  {
    rw::MutexLock lk(mu_);
    ended_ = true;
  }
  cv_.notify_all();
}

bool CollectingPacketSink::wait_for(std::size_t n, std::int64_t timeout_ms) {
  rw::MutexLock lk(mu_);
  ++waiters_;
  const bool ok = cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms),
                               [this, n] {
                                 mu_.assert_held();
                                 return packets_.size() >= n || ended_;
                               }) &&
                  packets_.size() >= n;
  --waiters_;
  return ok;
}

bool CollectingPacketSink::wait_end(std::int64_t timeout_ms) {
  rw::MutexLock lk(mu_);
  ++waiters_;
  const bool ok =
      cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms), [this] {
        mu_.assert_held();
        return ended_;
      });
  --waiters_;
  return ok;
}

std::vector<util::Bytes> CollectingPacketSink::packets() const {
  rw::MutexLock lk(mu_);
  return packets_;
}

std::size_t CollectingPacketSink::count() const {
  rw::MutexLock lk(mu_);
  return packets_.size();
}

bool CollectingPacketSink::ended() const {
  rw::MutexLock lk(mu_);
  return ended_;
}

}  // namespace rapidware::core
