#include "core/endpoint.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/buffer_pool.h"
#include "util/frame_reader.h"
#include "util/framing.h"

namespace rapidware::core {

std::optional<util::Bytes> PacketSource::poll_packet(bool* /*finished*/) {
  throw std::logic_error("packet source is not pollable");
}

PacketReaderEndpoint::PacketReaderEndpoint(std::string name,
                                           std::shared_ptr<PacketSource> source,
                                           std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), source_(std::move(source)) {}

void PacketReaderEndpoint::run() {
  for (;;) {
    auto packet = source_->next_packet();
    if (!packet) break;
    // Count before the frame becomes observable downstream: anyone who saw
    // the packet must also see it in the metric (STATS is a faithful view).
    packets_.fetch_add(1, std::memory_order_relaxed);
    util::write_frame(dos(), *packet);
    // The source's buffer is dead here; recycle it so pool-aware producers
    // (and downstream FrameReaders) stop hitting the allocator.
    util::BufferPool::local().release(std::move(*packet));
  }
}

void PacketReaderEndpoint::event_start() {
  ev_parked_.reset();
  source_->set_scheduler(event_scheduler());
}

void PacketReaderEndpoint::event_stop() {
  source_->set_scheduler(nullptr);
  if (ev_parked_) {
    util::BufferPool::local().release(std::move(*ev_parked_));
    ev_parked_.reset();
  }
}

Filter::Drive PacketReaderEndpoint::on_ready() {
  // Backpressure first: a parked payload must reach the ring before any new
  // packet, or frames would reorder.
  if (ev_parked_) {
    if (!util::try_write_frame(dos(), *ev_parked_)) return Drive::kIdle;
    util::BufferPool::local().release(std::move(*ev_parked_));
    ev_parked_.reset();
  }
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool finished = false;
    auto packet = source_->poll_packet(&finished);
    // Exhausted means run() would have returned: kDone without closing the
    // DOS, so downstream stays connected (removal protocol).
    if (!packet) return finished ? Drive::kDone : Drive::kIdle;
    packets_.fetch_add(1, std::memory_order_relaxed);
    if (!util::try_write_frame(dos(), *packet)) {
      ev_parked_ = std::move(packet);
      return Drive::kIdle;
    }
    util::BufferPool::local().release(std::move(*packet));
  }
  return Drive::kMore;
}

void PacketReaderEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_read()); });
}

PacketWriterEndpoint::PacketWriterEndpoint(std::string name,
                                           std::shared_ptr<PacketSink> sink,
                                           std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), sink_(std::move(sink)) {}

void PacketWriterEndpoint::run() {
  util::FrameReader frames(dis());
  for (;;) {
    auto packet = frames.next();
    if (!packet) break;
    // Count before delivery: a caller woken by the sink (e.g. wait_for(n))
    // must never read a metric that lags what the sink already handed out.
    packets_.fetch_add(1, std::memory_order_relaxed);
    sink_->deliver(*packet);
    util::BufferPool::local().release(std::move(*packet));
  }
  sink_->on_end();
}

void PacketWriterEndpoint::event_start() {
  ev_frames_ = std::make_unique<util::FrameReader>(dis());
  ev_ended_ = false;
}

void PacketWriterEndpoint::event_stop() { ev_frames_.reset(); }

Filter::Drive PacketWriterEndpoint::on_ready() {
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    auto packet = ev_frames_->poll(&end);
    if (!packet) {
      if (!end) return Drive::kIdle;
      if (!ev_ended_) {
        ev_ended_ = true;
        sink_->on_end();
      }
      return Drive::kDone;
    }
    // Same ordering contract as run(): count before delivery.
    packets_.fetch_add(1, std::memory_order_relaxed);
    sink_->deliver(*packet);
    util::BufferPool::local().release(std::move(*packet));
  }
  return Drive::kMore;
}

void PacketWriterEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_written()); });
}

ByteReaderEndpoint::ByteReaderEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSource> source,
                                       std::size_t chunk,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity),
      source_(std::move(source)),
      chunk_(chunk) {}

void ByteReaderEndpoint::run() {
  util::Bytes buf = util::BufferPool::local().acquire(chunk_);
  for (;;) {
    buf.resize(chunk_);
    const std::size_t n = source_->read_some(buf);
    if (n == 0) break;
    dos().write(util::ByteSpan(buf.data(), n));
  }
  util::BufferPool::local().release(std::move(buf));
}

void ByteReaderEndpoint::event_start() {
  ev_watch_.bind(event_scheduler());
  source_->set_ready_watcher(&ev_watch_);
  ev_buf_.clear();
  ev_off_ = 0;
  ev_parked_ = false;
}

void ByteReaderEndpoint::event_stop() {
  source_->set_ready_watcher(nullptr);
  util::BufferPool::local().release(std::move(ev_buf_));
  ev_off_ = 0;
  ev_parked_ = false;
}

bool ByteReaderEndpoint::flush_ev_parked() {
  if (!ev_parked_) return true;
  const std::size_t w =
      dos().try_write_some(util::ByteSpan(ev_buf_).subspan(ev_off_));
  ev_off_ += w;
  if (ev_off_ < ev_buf_.size()) return false;  // writable watcher armed
  ev_parked_ = false;
  ev_off_ = 0;
  return true;
}

Filter::Drive ByteReaderEndpoint::on_ready() {
  // Backpressure first: parked bytes must reach the ring before any new
  // read, or the stream would reorder.
  if (!flush_ev_parked()) return Drive::kIdle;
  if (ev_buf_.capacity() == 0) {
    // Lazily acquired on the loop thread so the buffer cycles through the
    // worker's own arena, not the control thread's.
    ev_buf_ = util::BufferPool::local().acquire(chunk_);
  }
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    ev_buf_.resize(chunk_);
    const std::size_t n = source_->poll_read_borrow(
        chunk_,
        [this](util::ByteSpan a, util::ByteSpan b) -> std::size_t {
          std::memcpy(ev_buf_.data(), a.data(), a.size());
          if (!b.empty()) {
            std::memcpy(ev_buf_.data() + a.size(), b.data(), b.size());
          }
          return a.size() + b.size();
        },
        &end);
    if (n == 0) {
      ev_buf_.clear();
      // Exhausted means run() would have returned: kDone without closing
      // the DOS (removal protocol); empty-and-open armed the watcher.
      return end ? Drive::kDone : Drive::kIdle;
    }
    ev_buf_.resize(n);
    const std::size_t w = dos().try_write_some(ev_buf_);
    if (w < n) {
      ev_parked_ = true;
      ev_off_ = w;
      return Drive::kIdle;  // writable watcher armed by the short write
    }
  }
  return Drive::kMore;
}

ByteWriterEndpoint::ByteWriterEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSink> sink,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), sink_(std::move(sink)) {}

namespace {
constexpr std::size_t kWriterChunk = 4096;
}  // namespace

void ByteWriterEndpoint::run() {
  util::Bytes buf = util::BufferPool::local().acquire(kWriterChunk);
  for (;;) {
    buf.resize(kWriterChunk);
    const std::size_t n = dis().read_some(buf);
    if (n == 0) break;
    sink_->write(util::ByteSpan(buf.data(), n));
  }
  sink_->flush();
  util::BufferPool::local().release(std::move(buf));
}

void ByteWriterEndpoint::event_start() {
  ev_watch_.bind(event_scheduler());
  sink_->set_ready_watcher(&ev_watch_);
  ev_buf_.clear();
  ev_off_ = 0;
  ev_parked_ = false;
}

void ByteWriterEndpoint::event_stop() {
  sink_->set_ready_watcher(nullptr);
  util::BufferPool::local().release(std::move(ev_buf_));
  ev_off_ = 0;
  ev_parked_ = false;
}

bool ByteWriterEndpoint::flush_ev_parked() {
  if (!ev_parked_) return true;
  const std::size_t w =
      sink_->try_write_some(util::ByteSpan(ev_buf_).subspan(ev_off_));
  ev_off_ += w;
  if (ev_off_ < ev_buf_.size()) return false;  // sink watcher armed
  ev_parked_ = false;
  ev_off_ = 0;
  return true;
}

Filter::Drive ByteWriterEndpoint::on_ready() {
  if (!flush_ev_parked()) return Drive::kIdle;
  if (ev_buf_.capacity() == 0) {
    ev_buf_ = util::BufferPool::local().acquire(kWriterChunk);
  }
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    ev_buf_.resize(kWriterChunk);
    const std::size_t n = dis().poll_read_borrow(
        kWriterChunk,
        [this](util::ByteSpan a, util::ByteSpan b) -> std::size_t {
          std::memcpy(ev_buf_.data(), a.data(), a.size());
          if (!b.empty()) {
            std::memcpy(ev_buf_.data() + a.size(), b.data(), b.size());
          }
          return a.size() + b.size();
        },
        &end);
    if (n == 0) {
      ev_buf_.clear();
      if (!end) return Drive::kIdle;  // readable watcher armed
      sink_->flush();
      return Drive::kDone;
    }
    ev_buf_.resize(n);
    const std::size_t w = sink_->try_write_some(ev_buf_);
    if (w < n) {
      ev_parked_ = true;
      ev_off_ = w;
      return Drive::kIdle;  // sink's ready watcher armed by the short write
    }
  }
  return Drive::kMore;
}

std::optional<util::Bytes> QueuePacketSource::next_packet() {
  rw::MutexLock lk(mu_);
  if (queue_.empty() && !finished_) {
    ++waiters_;
    cv_.wait(mu_, [this] {
      mu_.assert_held();
      return finished_ || !queue_.empty();
    });
    --waiters_;
  }
  if (queue_.empty()) return std::nullopt;
  util::Bytes packet = std::move(queue_.front());
  queue_.pop_front();
  return packet;
}

void QueuePacketSource::interrupt() { finish(); }

std::optional<util::Bytes> QueuePacketSource::poll_packet(bool* finished) {
  rw::MutexLock lk(mu_);
  *finished = false;
  if (!queue_.empty()) {
    util::Bytes packet = std::move(queue_.front());
    queue_.pop_front();
    return packet;
  }
  if (finished_) {
    *finished = true;
    return std::nullopt;
  }
  // Would-block: arm the one-shot wakeup. push()/finish() fire it under
  // this same mutex, so the arm/fire pair serializes — no lost wakeups.
  if (sched_) sched_armed_ = true;
  return std::nullopt;
}

void QueuePacketSource::set_scheduler(Scheduler* sched) {
  rw::MutexLock lk(mu_);
  sched_ = sched;
  if (sched == nullptr) sched_armed_ = false;
}

void QueuePacketSource::fire_readable_locked() {
  mu_.assert_held();
  if (sched_ != nullptr && sched_armed_) {
    sched_armed_ = false;
    // Contract: on_readable only posts to a worker queue; it must not call
    // back into this source (mu_ is held).
    sched_->on_readable();
  }
}

void QueuePacketSource::push(util::Bytes packet) {
  rw::MutexLock lk(mu_);
  queue_.push_back(std::move(packet));
  // Single consumer; skip the notify syscall when it is not parked.
  if (waiters_ > 0) cv_.notify_one();
  fire_readable_locked();
}

void QueuePacketSource::finish() {
  {
    rw::MutexLock lk(mu_);
    finished_ = true;
    fire_readable_locked();
  }
  cv_.notify_all();
}

void CollectingPacketSink::deliver(util::ByteSpan packet) {
  rw::MutexLock lk(mu_);
  packets_.emplace_back(packet.begin(), packet.end());
  // wait_for(n) callers may be parked; skip the notify when none are.
  if (waiters_ > 0) cv_.notify_all();
}

void CollectingPacketSink::on_end() {
  {
    rw::MutexLock lk(mu_);
    ended_ = true;
  }
  cv_.notify_all();
}

bool CollectingPacketSink::wait_for(std::size_t n, std::int64_t timeout_ms) {
  rw::MutexLock lk(mu_);
  ++waiters_;
  const bool ok = cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms),
                               [this, n] {
                                 mu_.assert_held();
                                 return packets_.size() >= n || ended_;
                               }) &&
                  packets_.size() >= n;
  --waiters_;
  return ok;
}

bool CollectingPacketSink::wait_end(std::int64_t timeout_ms) {
  rw::MutexLock lk(mu_);
  ++waiters_;
  const bool ok =
      cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms), [this] {
        mu_.assert_held();
        return ended_;
      });
  --waiters_;
  return ok;
}

std::vector<util::Bytes> CollectingPacketSink::packets() const {
  rw::MutexLock lk(mu_);
  return packets_;
}

std::size_t CollectingPacketSink::count() const {
  rw::MutexLock lk(mu_);
  return packets_.size();
}

bool CollectingPacketSink::ended() const {
  rw::MutexLock lk(mu_);
  return ended_;
}

}  // namespace rapidware::core
