#include "core/endpoint.h"

#include <chrono>

#include "util/framing.h"

namespace rapidware::core {

PacketReaderEndpoint::PacketReaderEndpoint(std::string name,
                                           std::shared_ptr<PacketSource> source)
    : Filter(std::move(name)), source_(std::move(source)) {}

void PacketReaderEndpoint::run() {
  for (;;) {
    auto packet = source_->next_packet();
    if (!packet) break;
    util::write_frame(dos(), *packet);
    packets_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PacketReaderEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_read()); });
}

PacketWriterEndpoint::PacketWriterEndpoint(std::string name,
                                           std::shared_ptr<PacketSink> sink)
    : Filter(std::move(name)), sink_(std::move(sink)) {}

void PacketWriterEndpoint::run() {
  for (;;) {
    auto packet = util::read_frame(dis());
    if (!packet) break;
    sink_->deliver(*packet);
    packets_.fetch_add(1, std::memory_order_relaxed);
  }
  sink_->on_end();
}

void PacketWriterEndpoint::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets",
                 [this] { return static_cast<double>(packets_written()); });
}

ByteReaderEndpoint::ByteReaderEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSource> source,
                                       std::size_t chunk,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity),
      source_(std::move(source)),
      chunk_(chunk) {}

void ByteReaderEndpoint::run() {
  util::Bytes buf(chunk_);
  for (;;) {
    const std::size_t n = source_->read_some(buf);
    if (n == 0) break;
    dos().write(util::ByteSpan(buf.data(), n));
  }
}

ByteWriterEndpoint::ByteWriterEndpoint(std::string name,
                                       std::shared_ptr<util::ByteSink> sink,
                                       std::size_t buffer_capacity)
    : Filter(std::move(name), buffer_capacity), sink_(std::move(sink)) {}

void ByteWriterEndpoint::run() {
  util::Bytes buf(4096);
  for (;;) {
    const std::size_t n = dis().read_some(buf);
    if (n == 0) break;
    sink_->write(util::ByteSpan(buf.data(), n));
  }
  sink_->flush();
}

std::optional<util::Bytes> QueuePacketSource::next_packet() {
  std::unique_lock lk(mu_);
  cv_.wait(lk, [&] { return finished_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  util::Bytes packet = std::move(queue_.front());
  queue_.pop_front();
  return packet;
}

void QueuePacketSource::interrupt() { finish(); }

void QueuePacketSource::push(util::Bytes packet) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(packet));
  }
  cv_.notify_one();
}

void QueuePacketSource::finish() {
  {
    std::lock_guard lk(mu_);
    finished_ = true;
  }
  cv_.notify_all();
}

void CollectingPacketSink::deliver(util::ByteSpan packet) {
  {
    std::lock_guard lk(mu_);
    packets_.emplace_back(packet.begin(), packet.end());
  }
  cv_.notify_all();
}

void CollectingPacketSink::on_end() {
  {
    std::lock_guard lk(mu_);
    ended_ = true;
  }
  cv_.notify_all();
}

bool CollectingPacketSink::wait_for(std::size_t n, std::int64_t timeout_ms) {
  std::unique_lock lk(mu_);
  return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                      [&] { return packets_.size() >= n || ended_; }) &&
         packets_.size() >= n;
}

bool CollectingPacketSink::wait_end(std::int64_t timeout_ms) {
  std::unique_lock lk(mu_);
  return cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                      [&] { return ended_; });
}

std::vector<util::Bytes> CollectingPacketSink::packets() const {
  std::lock_guard lk(mu_);
  return packets_;
}

std::size_t CollectingPacketSink::count() const {
  std::lock_guard lk(mu_);
  return packets_.size();
}

bool CollectingPacketSink::ended() const {
  std::lock_guard lk(mu_);
  return ended_;
}

}  // namespace rapidware::core
