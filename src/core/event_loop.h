// Per-worker run-to-completion event loop (docs/data_plane.md, "Worker
// model").
//
// One EventLoop multiplexes thousands of filter chains on a single OS
// thread: instead of parking one blocking thread per filter on the stream
// condvars, an event-hosted filter registers a core::Scheduler on its
// streams and is POSTED here whenever an armed poll would now make
// progress. Tasks run to completion, in order, on the loop thread — so two
// filters of the same chain never race, which is what makes chain-affinity
// pinning (whole FilterChain on one worker) free of intra-chain
// synchronization beyond the stream rings themselves.
//
// Each loop also owns a sim::VirtualClock slaved to wall time: between
// task batches the loop advances the clock to the elapsed wall
// microseconds since run() began, firing due sim::PeriodicTask timers on
// the loop thread (the idle-flow eviction sweeps ride on this). When the
// queue is empty the loop sleeps until the next due timer or the next
// post, whichever comes first.
//
// Blocking discipline: everything executed here — tasks, timer callbacks,
// Filter::on_ready() drives — must never block (rw_lint RW008 covers this
// file). The two condition waits below are the loop's own idle parking and
// the control-plane sync() barrier; both carry reasoned waivers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "sim/virtual_clock.h"
#include "util/buffer_pool.h"
#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

class EventLoop {
 public:
  using Task = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueues a task for the loop thread. Thread-safe; callable from loop
  /// tasks themselves (self-posts run in a later batch, which is how
  /// Drive::kMore yields between chains for fairness). Posting to a
  /// stopped loop is allowed until run() returns — the task still runs,
  /// because run() drains the queue before exiting.
  void post(Task task);

  /// Runs tasks and timers on the calling thread until stop() AND an empty
  /// queue. The hosting WorkerPool calls this from its worker threads.
  void run();

  /// Asks run() to return once the queue drains. Thread-safe, idempotent.
  void stop();

  /// True when the caller IS the loop thread (inside a task or timer).
  bool on_loop_thread() const {
    return thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// The loop's wall-slaved virtual clock. schedule_at/PeriodicTask on it
  /// fire on the loop thread; safe to call from any thread.
  sim::VirtualClock& clock() noexcept { return clock_; }

  /// Nudges a parked loop to recompute its timer horizon. Call after
  /// scheduling on clock() from another thread: the idle wait is bounded
  /// by the horizon read BEFORE parking, so without a wake an earlier-due
  /// timer would wait out the previous bound.
  void wake();

  /// Control-plane barrier: returns after every task posted before this
  /// call has executed (and, transitively, after any in-flight timer
  /// callback finished — timers run between batches). A no-op when called
  /// from the loop thread itself, where waiting would self-deadlock.
  void sync();

  /// Tasks executed so far (drives + posts; timer callbacks not counted).
  std::uint64_t tasks_run() const noexcept {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// The loop's worker-local buffer arena (rebalances against
  /// util::default_pool()). run() installs it as the thread's
  /// util::BufferPool::local() for its whole lifetime, so every
  /// data-plane acquire/release on the loop thread is worker-local —
  /// the shared-nothing half of the scaling story (docs/data_plane.md).
  util::BufferPool& pool() noexcept { return pool_; }

  /// Tasks posted but not yet retired (queued + currently executing).
  /// A relaxed load — placement reads it as a freshness-tolerant signal.
  std::size_t queue_depth() const noexcept {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Smoothed fraction of wall time this loop spent executing tasks and
  /// timers (EWMA, alpha 1/8, updated once per batch; decays while idle).
  double busy_fraction() const noexcept {
    return static_cast<double>(busy_ppm_.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// The load-aware placement signal: backlog plus smoothed busyness.
  /// Dimensionally loose by design — queue depth dominates once a worker
  /// falls behind, busy fraction breaks ties between keeping-up workers.
  double load() const noexcept {
    return static_cast<double>(queue_depth()) + busy_fraction();
  }

 private:
  mutable rw::Mutex mu_{"core/event_loop", rw::lockrank::kEventLoop};
  rw::CondVar cv_;
  std::deque<Task> queue_ RW_GUARDED_BY(mu_);
  bool stop_ RW_GUARDED_BY(mu_) = false;
  int waiters_ RW_GUARDED_BY(mu_) = 0;  // the loop thread parked idle

  sim::VirtualClock clock_;  // rw-lint: allow(RW003) internally synchronized
  util::BufferPool pool_{  // rw-lint: allow(RW003) internally synchronized
      util::BufferPool::Config{}, &util::default_pool()};
  std::atomic<std::thread::id> thread_id_{};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::uint32_t> busy_ppm_{0};  // busy fraction EWMA, ppm
};

}  // namespace rapidware::core
