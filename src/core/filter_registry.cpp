#include "core/filter_registry.h"

#include <stdexcept>

#include "util/serial.h"

namespace rapidware::core {

util::Bytes FilterSpec::serialize() const {
  util::Writer w;
  w.str(name);
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& [k, v] : params) {
    w.str(k);
    w.str(v);
  }
  return w.take();
}

FilterSpec FilterSpec::deserialize(util::ByteSpan in) {
  util::Reader r(in);
  FilterSpec spec;
  spec.name = r.str();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k = r.str();
    spec.params[k] = r.str();
  }
  return spec;
}

void FilterRegistry::register_factory(std::string name, Factory factory) {
  rw::MutexLock lk(mu_);
  factories_[std::move(name)] = std::move(factory);
}

bool FilterRegistry::contains(const std::string& name) const {
  rw::MutexLock lk(mu_);
  return factories_.count(name) != 0 || aliases_.count(name) != 0;
}

std::vector<std::string> FilterRegistry::names() const {
  rw::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size() + aliases_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  for (const auto& [name, _] : aliases_) out.push_back(name);
  return out;
}

std::shared_ptr<Filter> FilterRegistry::create(const FilterSpec& spec) const {
  FilterSpec resolved = spec;
  {
    rw::MutexLock lk(mu_);
    // Resolve alias chains (bounded to avoid cycles).
    for (int depth = 0; depth < 8; ++depth) {
      auto it = aliases_.find(resolved.name);
      if (it == aliases_.end()) break;
      FilterSpec base = it->second;
      // Instantiation parameters overlay the alias's stored defaults.
      for (const auto& [k, v] : resolved.params) base.params[k] = v;
      resolved = std::move(base);
    }
  }
  Factory factory;
  {
    rw::MutexLock lk(mu_);
    auto it = factories_.find(resolved.name);
    if (it == factories_.end()) {
      throw std::out_of_range("FilterRegistry: unknown filter '" +
                              resolved.name + "'");
    }
    factory = it->second;
  }
  return factory(resolved.params);
}

void FilterRegistry::register_alias(std::string name, FilterSpec base) {
  rw::MutexLock lk(mu_);
  aliases_[std::move(name)] = std::move(base);
}

FilterRegistry& global_registry() {
  static FilterRegistry registry;
  return registry;
}

void FilterContainer::add(std::shared_ptr<Filter> filter) {
  if (!filter) throw std::invalid_argument("FilterContainer::add: null filter");
  rw::MutexLock lk(mu_);
  filters_.push_back(std::move(filter));
}

std::size_t FilterContainer::size() const {
  rw::MutexLock lk(mu_);
  return filters_.size();
}

std::vector<std::string> FilterContainer::enumerate() const {
  rw::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(filters_.size());
  for (const auto& f : filters_) out.push_back(f->name());
  return out;
}

std::shared_ptr<Filter> FilterContainer::take(const std::string& name) {
  rw::MutexLock lk(mu_);
  for (auto it = filters_.begin(); it != filters_.end(); ++it) {
    if ((*it)->name() == name) {
      auto f = *it;
      filters_.erase(it);
      return f;
    }
  }
  return nullptr;
}

}  // namespace rapidware::core
