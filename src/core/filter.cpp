#include "core/filter.h"

#include <cstring>

#include "core/event_loop.h"
#include "util/buffer_pool.h"
#include "util/frame_reader.h"
#include "util/framing.h"
#include "util/lock_rank.h"
#include "util/logging.h"

namespace rapidware::core {

namespace detail {

/// Shared hosting state of one event-mode filter run. Tasks capture a
/// shared_ptr, so a late readiness fire can never dangle: `alive` flips
/// false in finish_event() ON the loop thread, and because all of a core's
/// tasks serialize on that one thread, any task posted after the final
/// drive observes it and returns without touching the filter.
struct FilterEventCore final : Scheduler,
                               std::enable_shared_from_this<FilterEventCore> {
  FilterEventCore(Filter* filter, EventLoop* loop)
      : filter(filter), loop(loop) {}

  /// Coalescing re-drive: at most one task in flight per core. The flag
  /// clears at task START, so a fire during a drive posts a fresh task —
  /// the armed-under-the-stream-lock protocol makes lost wakeups
  /// impossible.
  void schedule() {
    if (scheduled.exchange(true, std::memory_order_acq_rel)) return;
    loop->post([self = shared_from_this()] {
      self->scheduled.store(false, std::memory_order_release);
      if (!self->alive.load(std::memory_order_acquire)) return;
      self->filter->drive_event(*self);
    });
  }

  // Fired under a stream lock (core::Scheduler contract): post only.
  void on_readable() override { schedule(); }
  void on_writable() override { schedule(); }

  Filter* const filter;
  EventLoop* const loop;
  std::atomic<bool> alive{true};
  std::atomic<bool> scheduled{false};

  rw::Mutex mu{"core/filter_event", rw::lockrank::kFilterEvent};
  rw::CondVar done_cv;
  bool done RW_GUARDED_BY(mu) = false;  // the run's join()/destructor gate
};

}  // namespace detail

Filter::Filter(std::string name, std::size_t buffer_capacity)
    : name_(std::move(name)),
      dis_(std::make_unique<DetachableInputStream>(buffer_capacity)),
      dos_(std::make_unique<DetachableOutputStream>()) {}

Filter::~Filter() {
  // Unblock and reap the processing thread if the owner forgot to.
  dis_->close();
  if (event_core_ && event_hosted_.load(std::memory_order_acquire)) {
    // A hosted drive parked on downstream backpressure holds no thread we
    // could join; closing the DOS turns its parked try_write into
    // BrokenPipe so the final drive reaches Drive::kDone.
    dos_->close();
  }
  if (thread_.joinable()) thread_.join();
  if (const std::shared_ptr<detail::FilterEventCore> core = event_core_) {
    rw::MutexLock lk(core->mu);
    core->done_cv.wait(core->mu, [c = core.get()] {
      c->mu.assert_held();
      return c->done;
    });
  }
}

void Filter::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw StreamError("Filter::start: already running");
  }
  if (thread_.joinable()) thread_.join();  // reap a previous run
  event_core_.reset();  // a previous hosted run is fully finished here
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { thread_main(); });
}

void Filter::start_on(EventLoop& loop) {
  if (!event_capable()) {
    // Blocking shim: subclasses without a non-blocking drive keep their
    // thread, and the chain transparently mixes both styles.
    start();
    return;
  }
  if (running_.load(std::memory_order_acquire)) {
    throw StreamError("Filter::start: already running");
  }
  if (thread_.joinable()) thread_.join();  // reap a previous thread run
  event_core_ = std::make_shared<detail::FilterEventCore>(this, &loop);
  running_.store(true, std::memory_order_release);
  event_hosted_.store(true, std::memory_order_release);
  event_start();
  dis_->set_read_scheduler(event_core_.get());
  dos_->set_write_scheduler(event_core_.get());
  event_core_->schedule();  // input (or an EOF) may already be waiting
}

void Filter::join() {
  if (thread_.joinable()) thread_.join();
  if (const std::shared_ptr<detail::FilterEventCore> core = event_core_) {
    // Must not be called from the filter's own worker: the drive that
    // would set `done` runs behind this very task. Control-plane threads
    // only (FilterChain serializes them), like thread-mode join().
    rw::MutexLock lk(core->mu);
    core->done_cv.wait(core->mu, [c = core.get()] {
      c->mu.assert_held();
      return c->done;
    });
  }
}

Scheduler* Filter::event_scheduler() const noexcept {
  return event_core_.get();
}

void Filter::drive_event(detail::FilterEventCore& core) {
  Drive drive;
  try {
    drive = on_ready();
  } catch (const BrokenPipe&) {
    // Downstream went away; normal during teardown. Mirror thread_main:
    // close the input so upstream writers cannot wedge against a ring
    // nobody will drain.
    dis_->close();
    drive = Drive::kDone;
  } catch (const std::exception& e) {
    RW_ERROR(name_) << "filter loop failed: " << e.what();
    dis_->close();
    drive = Drive::kDone;
  }
  switch (drive) {
    case Drive::kIdle:
      return;  // a watcher is armed; its fire posts the next drive
    case Drive::kMore:
      core.schedule();  // yield the worker, continue in a later batch
      return;
    case Drive::kDone:
      finish_event(core);
      return;
  }
}

void Filter::finish_event(detail::FilterEventCore& core) {
  // Uninstall the watchers first (under the stream locks) so a concurrent
  // notify cannot arm against a finished run, then flip alive: any task
  // already queued behind this one sees it and returns.
  dis_->set_read_scheduler(nullptr);
  dos_->set_write_scheduler(nullptr);
  event_stop();
  core.alive.store(false, std::memory_order_release);
  event_hosted_.store(false, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  rw::MutexLock lk(core.mu);
  core.done = true;
  core.done_cv.notify_all();
}

void Filter::detach_request() { dis_->mark_soft_eof(); }

bool Filter::set_param(const std::string& key, const std::string& value) {
  (void)key;
  (void)value;
  return false;
}

void Filter::register_metrics(obs::Scope scope) {
  // Raw pointers are safe: the chain drops this scope (blocking out any
  // in-flight snapshot) before the filter can be destroyed.
  auto* dis = dis_.get();
  auto* dos = dos_.get();
  scope.callback("bytes_in",
                 [dis] { return static_cast<double>(dis->bytes_received()); });
  scope.callback("bytes_out",
                 [dos] { return static_cast<double>(dos->bytes_sent()); });
  scope.callback("pauses",
                 [dos] { return static_cast<double>(dos->pauses()); });
  scope.callback("blocked_us",
                 [dos] { return static_cast<double>(dos->blocked_micros()); });
  scope.callback("wakeups",
                 [dis] { return static_cast<double>(dis->wakeups()); });
  scope.callback("wakeups_suppressed", [dis] {
    return static_cast<double>(dis->wakeups_suppressed());
  });
}

void Filter::thread_main() {
  try {
    run();
    running_.store(false, std::memory_order_release);
    return;
  } catch (const BrokenPipe&) {
    // Downstream went away; normal during teardown.
  } catch (const std::exception& e) {
    RW_ERROR(name_) << "filter loop failed: " << e.what();
  }
  // The loop died without draining its input. Close the DIS so upstream
  // writers observe BrokenPipe instead of blocking forever against a ring
  // nobody will ever drain — a dead tail must not wedge the whole chain.
  dis_->close();
  running_.store(false, std::memory_order_release);
}

void ByteFilter::run() {
  // One buffer cycles through the whole loop: filled by the read, handed to
  // process() by value, and whatever process() returns (the same buffer,
  // for pass-through filters) is reused for the next read. Zero per-chunk
  // allocations in steady state.
  auto& pool = util::BufferPool::local();
  util::Bytes buf = pool.acquire(kChunk);
  for (;;) {
    buf.resize(kChunk);
    const std::size_t n = dis().read_some(buf);
    if (n == 0) break;
    buf.resize(n);
    util::Bytes out = process(std::move(buf));
    if (!out.empty()) dos().write(out);
    buf = std::move(out);  // recycle the returned capacity
  }
  util::Bytes tail = flush_tail();  // rw-lint: allow(RW006) once at stream end, not per chunk
  if (!tail.empty()) dos().write(tail);
  pool.release(std::move(buf));
}

void ByteFilter::event_start() {
  ev_buf_ = util::BufferPool::local().acquire(kChunk);
  ev_out_.clear();
  ev_out_off_ = 0;
  ev_tail_done_ = false;
}

void ByteFilter::event_stop() {
  util::BufferPool::local().release(std::move(ev_buf_));
  ev_out_.clear();
  ev_out_off_ = 0;
}

bool ByteFilter::flush_ev_out() {
  while (!ev_out_.empty()) {
    util::Bytes& front = ev_out_.front();
    const std::size_t w =
        dos().try_write_some(util::ByteSpan(front).subspan(ev_out_off_));
    ev_out_off_ += w;
    if (ev_out_off_ < front.size()) return false;  // writable watcher armed
    util::BufferPool::local().release(std::move(front));
    ev_out_.pop_front();
    ev_out_off_ = 0;
  }
  return true;
}

Filter::Drive ByteFilter::on_ready() {
  if (!flush_ev_out()) return Drive::kIdle;
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    ev_buf_.resize(kChunk);
    const std::size_t n = dis().poll_read_borrow(
        kChunk,
        [this](util::ByteSpan a, util::ByteSpan b) -> std::size_t {
          // One copy into the recycled chunk buffer — the event-mode twin
          // of read_some()'s copy in run().
          std::memcpy(ev_buf_.data(), a.data(), a.size());
          if (!b.empty()) {
            std::memcpy(ev_buf_.data() + a.size(), b.data(), b.size());
          }
          return a.size() + b.size();
        },
        &end);
    if (n == 0) {
      ev_buf_.clear();
      if (!end) return Drive::kIdle;  // readable watcher armed
      if (!ev_tail_done_) {
        ev_tail_done_ = true;
        util::Bytes tail = flush_tail();
        if (!tail.empty()) ev_out_.push_back(std::move(tail));
      }
      return flush_ev_out() ? Drive::kDone : Drive::kIdle;
    }
    ev_buf_.resize(n);
    util::Bytes out = process(std::move(ev_buf_));
    if (!out.empty()) {
      const std::size_t w = dos().try_write_some(out);
      if (w < out.size()) {
        // Parked behind backpressure: keep the unwritten suffix, stop
        // reading input until the writable callback drains it.
        ev_out_.push_back(std::move(out));
        ev_out_off_ = w;
        ev_buf_ = util::Bytes();
        return Drive::kIdle;
      }
    }
    ev_buf_ = std::move(out);  // recycle the returned capacity
  }
  return Drive::kMore;
}

void PacketFilter::run() {
  // FrameReader batches frame parsing (many frames per stream-lock
  // acquisition) and draws payload buffers from the pool; emit(Bytes&&)
  // returns them, closing the recycle loop.
  util::FrameReader frames(dis());
  for (;;) {
    auto packet = frames.next();
    if (!packet) break;
    packets_in_.fetch_add(1, std::memory_order_relaxed);
    on_packet(std::move(*packet));
  }
  on_flush();
}

void PacketFilter::event_start() {
  ev_frames_ = std::make_unique<util::FrameReader>(dis());
  ev_pending_.clear();
  ev_flushed_ = false;
}

void PacketFilter::event_stop() { ev_frames_.reset(); }

bool PacketFilter::flush_ev_pending() {
  while (!ev_pending_.empty()) {
    if (!util::try_write_frame(dos(), ev_pending_.front())) {
      return false;  // writable watcher armed
    }
    util::BufferPool::local().release(std::move(ev_pending_.front()));
    ev_pending_.pop_front();
  }
  return true;
}

void PacketFilter::ev_emit(util::Bytes&& packet) {
  // Frames stay whole: all-or-nothing try_write_frame, with the packet
  // parked (move, no copy) when downstream is full or mid-splice. Input is
  // not consumed while anything is parked, so the backlog is bounded by
  // one on_packet()'s emissions.
  if (ev_pending_.empty() && util::try_write_frame(dos(), packet)) {
    util::BufferPool::local().release(std::move(packet));
    return;
  }
  ev_pending_.push_back(std::move(packet));
}

Filter::Drive PacketFilter::on_ready() {
  if (!flush_ev_pending()) return Drive::kIdle;
  for (int budget = 0; budget < kDriveBudget; ++budget) {
    bool end = false;
    auto packet = ev_frames_->poll(&end);
    if (!packet) {
      if (!end) return Drive::kIdle;  // readable watcher armed
      if (!ev_flushed_) {
        ev_flushed_ = true;
        on_flush();
      }
      return flush_ev_pending() ? Drive::kDone : Drive::kIdle;
    }
    packets_in_.fetch_add(1, std::memory_order_relaxed);
    on_packet(std::move(*packet));
    if (!flush_ev_pending()) return Drive::kIdle;
  }
  return Drive::kMore;
}

void PacketFilter::emit(util::ByteSpan packet) {
  // Count before the frame becomes observable downstream so a STATS read
  // triggered by the packet's arrival never sees the counter lagging it.
  packets_out_.fetch_add(1, std::memory_order_relaxed);
  if (event_hosted()) {
    util::Bytes copy = util::BufferPool::local().acquire(packet.size());
    if (!packet.empty()) {
      std::memcpy(copy.data(), packet.data(), packet.size());
    }
    ev_emit(std::move(copy));
    return;
  }
  util::write_frame(dos(), packet);
}

void PacketFilter::emit(util::Bytes&& packet) {
  packets_out_.fetch_add(1, std::memory_order_relaxed);
  if (event_hosted()) {
    ev_emit(std::move(packet));
    return;
  }
  util::write_frame(dos(), packet);
  util::BufferPool::local().release(std::move(packet));
}

void PacketFilter::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets_in",
                 [this] { return static_cast<double>(packets_in()); });
  scope.callback("packets_out",
                 [this] { return static_cast<double>(packets_out()); });
}

}  // namespace rapidware::core
