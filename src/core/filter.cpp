#include "core/filter.h"

#include "util/buffer_pool.h"
#include "util/frame_reader.h"
#include "util/framing.h"
#include "util/logging.h"

namespace rapidware::core {

Filter::Filter(std::string name, std::size_t buffer_capacity)
    : name_(std::move(name)),
      dis_(std::make_unique<DetachableInputStream>(buffer_capacity)),
      dos_(std::make_unique<DetachableOutputStream>()) {}

Filter::~Filter() {
  // Unblock and reap the processing thread if the owner forgot to.
  dis_->close();
  if (thread_.joinable()) thread_.join();
}

void Filter::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw StreamError("Filter::start: already running");
  }
  if (thread_.joinable()) thread_.join();  // reap a previous run
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { thread_main(); });
}

void Filter::join() {
  if (thread_.joinable()) thread_.join();
}

void Filter::detach_request() { dis_->mark_soft_eof(); }

bool Filter::set_param(const std::string& key, const std::string& value) {
  (void)key;
  (void)value;
  return false;
}

void Filter::register_metrics(obs::Scope scope) {
  // Raw pointers are safe: the chain drops this scope (blocking out any
  // in-flight snapshot) before the filter can be destroyed.
  auto* dis = dis_.get();
  auto* dos = dos_.get();
  scope.callback("bytes_in",
                 [dis] { return static_cast<double>(dis->bytes_received()); });
  scope.callback("bytes_out",
                 [dos] { return static_cast<double>(dos->bytes_sent()); });
  scope.callback("pauses",
                 [dos] { return static_cast<double>(dos->pauses()); });
  scope.callback("blocked_us",
                 [dos] { return static_cast<double>(dos->blocked_micros()); });
  scope.callback("wakeups",
                 [dis] { return static_cast<double>(dis->wakeups()); });
  scope.callback("wakeups_suppressed", [dis] {
    return static_cast<double>(dis->wakeups_suppressed());
  });
}

void Filter::thread_main() {
  try {
    run();
    running_.store(false, std::memory_order_release);
    return;
  } catch (const BrokenPipe&) {
    // Downstream went away; normal during teardown.
  } catch (const std::exception& e) {
    RW_ERROR(name_) << "filter loop failed: " << e.what();
  }
  // The loop died without draining its input. Close the DIS so upstream
  // writers observe BrokenPipe instead of blocking forever against a ring
  // nobody will ever drain — a dead tail must not wedge the whole chain.
  dis_->close();
  running_.store(false, std::memory_order_release);
}

void ByteFilter::run() {
  // One buffer cycles through the whole loop: filled by the read, handed to
  // process() by value, and whatever process() returns (the same buffer,
  // for pass-through filters) is reused for the next read. Zero per-chunk
  // allocations in steady state.
  auto& pool = util::default_pool();
  util::Bytes buf = pool.acquire(kChunk);
  for (;;) {
    buf.resize(kChunk);
    const std::size_t n = dis().read_some(buf);
    if (n == 0) break;
    buf.resize(n);
    util::Bytes out = process(std::move(buf));
    if (!out.empty()) dos().write(out);
    buf = std::move(out);  // recycle the returned capacity
  }
  util::Bytes tail = flush_tail();  // rw-lint: allow(RW006) once at stream end, not per chunk
  if (!tail.empty()) dos().write(tail);
  pool.release(std::move(buf));
}

void PacketFilter::run() {
  // FrameReader batches frame parsing (many frames per stream-lock
  // acquisition) and draws payload buffers from the pool; emit(Bytes&&)
  // returns them, closing the recycle loop.
  util::FrameReader frames(dis());
  for (;;) {
    auto packet = frames.next();
    if (!packet) break;
    packets_in_.fetch_add(1, std::memory_order_relaxed);
    on_packet(std::move(*packet));
  }
  on_flush();
}

void PacketFilter::emit(util::ByteSpan packet) {
  // Count before the frame becomes observable downstream so a STATS read
  // triggered by the packet's arrival never sees the counter lagging it.
  packets_out_.fetch_add(1, std::memory_order_relaxed);
  util::write_frame(dos(), packet);
}

void PacketFilter::emit(util::Bytes&& packet) {
  packets_out_.fetch_add(1, std::memory_order_relaxed);
  util::write_frame(dos(), packet);
  util::default_pool().release(std::move(packet));
}

void PacketFilter::register_metrics(obs::Scope scope) {
  Filter::register_metrics(scope);
  scope.callback("packets_in",
                 [this] { return static_cast<double>(packets_in()); });
  scope.callback("packets_out",
                 [this] { return static_cast<double>(packets_out()); });
}

}  // namespace rapidware::core
