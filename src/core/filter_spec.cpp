#include "core/filter_spec.h"

#include <sstream>

#include "util/serial.h"

namespace rapidware::core {

util::Bytes ChainSpec::serialize() const {
  util::Writer w;
  w.str(name);
  w.u32(static_cast<std::uint32_t>(stages.size()));
  for (const FilterSpec& stage : stages) w.blob(stage.serialize());
  return w.take();
}

ChainSpec ChainSpec::deserialize(util::ByteSpan in) {
  util::Reader r(in);
  ChainSpec spec;
  spec.name = r.str();
  const std::uint32_t n = r.u32();
  spec.stages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    spec.stages.push_back(FilterSpec::deserialize(r.blob()));
  }
  return spec;
}

std::string ChainSpec::render() const {
  std::ostringstream os;
  os << (name.empty() ? "chain" : name) << ":";
  if (stages.empty()) {
    os << " passthrough";
    return os.str();
  }
  for (std::size_t i = 0; i < stages.size(); ++i) {
    os << (i == 0 ? " " : " -> ") << stages[i].name << '{';
    bool first = true;
    for (const auto& [k, v] : stages[i].params) {
      os << (first ? "" : ",") << k << '=' << v;
      first = false;
    }
    os << '}';
  }
  return os.str();
}

ChainSpecRef FilterSpecTable::intern(ChainSpec spec) {
  const util::Bytes wire = spec.serialize();
  std::string key(wire.begin(), wire.end());
  rw::MutexLock lk(mu_);
  auto it = interned_.find(key);
  if (it != interned_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto ref = std::make_shared<const ChainSpec>(std::move(spec));
  interned_.emplace(std::move(key), ref);
  return ref;
}

std::size_t FilterSpecTable::size() const {
  rw::MutexLock lk(mu_);
  return interned_.size();
}

std::size_t FilterSpecTable::purge_unreferenced() {
  rw::MutexLock lk(mu_);
  std::size_t purged = 0;
  for (auto it = interned_.begin(); it != interned_.end();) {
    if (it->second.use_count() == 1) {
      it = interned_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

std::uint64_t FilterSpecTable::hits() const {
  rw::MutexLock lk(mu_);
  return hits_;
}

std::uint64_t FilterSpecTable::misses() const {
  rw::MutexLock lk(mu_);
  return misses_;
}

FilterSpecTable& global_spec_table() {
  static FilterSpecTable table;
  return table;
}

std::vector<std::shared_ptr<Filter>> instantiate_chain(
    const ChainSpec& spec, const FilterRegistry& registry) {
  std::vector<std::shared_ptr<Filter>> out;
  out.reserve(spec.stages.size());
  for (const FilterSpec& stage : spec.stages) {
    out.push_back(registry.create(stage));
  }
  return out;
}

}  // namespace rapidware::core
