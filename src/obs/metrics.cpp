#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rapidware::obs {

namespace {

std::string format_u64(std::uint64_t v) { return std::to_string(v); }

bool under_prefix(const std::string& name, const std::string& prefix) {
  if (prefix.empty()) return true;
  if (name.size() < prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return name.size() == prefix.size() || name[prefix.size()] == '/';
}

}  // namespace

std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Simple metrics

void Counter::collect(const std::string& name, Snapshot& out) const {
  out.push_back({name, format_u64(value())});
}

void Gauge::collect(const std::string& name, Snapshot& out) const {
  out.push_back({name, std::to_string(value())});
}

CallbackGauge::CallbackGauge(Fn fn) : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("CallbackGauge: null callback");
}

void CallbackGauge::collect(const std::string& name, Snapshot& out) const {
  out.push_back({name, format_value(fn_())});
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly increase");
  }
}

void Histogram::observe(double x) noexcept {
#if RW_OBS_ENABLED
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + x,
                                     std::memory_order_relaxed)) {
  }
#else
  (void)x;
#endif
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double target = static_cast<double>(total) * p / 100.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

void Histogram::collect(const std::string& name, Snapshot& out) const {
  out.push_back({name + ".count", format_u64(count())});
  out.push_back({name + ".sum", format_value(sum())});
  out.push_back({name + ".p50", format_value(percentile(50))});
  out.push_back({name + ".p90", format_value(percentile(90))});
  out.push_back({name + ".p99", format_value(percentile(99))});
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    const std::string bound =
        i < bounds_.size() ? format_value(bounds_[i]) : "inf";
    out.push_back({name + ".le." + bound, format_u64(cumulative)});
  }
}

std::vector<double> Histogram::latency_us_bounds() {
  return {50, 100, 250, 500, 1'000, 2'500, 5'000, 10'000, 50'000, 250'000};
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("TraceRing: zero capacity");
}

void TraceRing::record(std::string text) {
  record_at(util::WallClock().now(), std::move(text));
}

void TraceRing::record_at(util::Micros at, std::string text) {
#if RW_OBS_ENABLED
  rw::MutexLock lk(mu_);
  ring_.push_back({next_seq_++, at, std::move(text)});
  if (ring_.size() > capacity_) ring_.pop_front();
#else
  (void)at;
  (void)text;
#endif
}

std::vector<TraceRing::Event> TraceRing::events() const {
  rw::MutexLock lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TraceRing::total_recorded() const {
  rw::MutexLock lk(mu_);
  return next_seq_;
}

void TraceRing::collect(const std::string& name, Snapshot& out) const {
  rw::MutexLock lk(mu_);
  for (const auto& e : ring_) {
    out.push_back({name + "." + std::to_string(e.seq),
                   "t=" + std::to_string(e.at) + " " + e.text});
  }
}

// ---------------------------------------------------------------------------
// Registry

namespace {

/// Creates (or reuses, when the type matches) a metric of type T.
template <typename T, typename... Args>
std::shared_ptr<T> get_or_create(rw::Mutex& mu,
                                 std::map<std::string, std::shared_ptr<Metric>>& metrics,
                                 const std::string& name, Args&&... args)
    RW_NO_THREAD_SAFETY_ANALYSIS {
  // The analysis cannot see that `metrics` is the map `mu` guards (the
  // guarded_by relation does not survive being passed by reference), so it
  // is disabled for this one helper; the MutexLock below is the real guard.
  rw::MutexLock lk(mu);  // lock-graph: holds(obs/registry)
  auto it = metrics.find(name);
  if (it != metrics.end()) {
    if (auto existing = std::dynamic_pointer_cast<T>(it->second)) {
      return existing;
    }
  }
  auto fresh = std::make_shared<T>(std::forward<Args>(args)...);
  metrics[name] = fresh;
  return fresh;
}

}  // namespace

std::shared_ptr<Counter> Registry::counter(const std::string& name) {
  return get_or_create<Counter>(mu_, metrics_, name);
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name) {
  return get_or_create<Gauge>(mu_, metrics_, name);
}

std::shared_ptr<Histogram> Registry::histogram(
    const std::string& name, std::vector<double> upper_bounds) {
  return get_or_create<Histogram>(mu_, metrics_, name, std::move(upper_bounds));
}

std::shared_ptr<TraceRing> Registry::trace(const std::string& name,
                                           std::size_t capacity) {
  return get_or_create<TraceRing>(mu_, metrics_, name, capacity);
}

void Registry::callback(const std::string& name, CallbackGauge::Fn fn) {
  attach(name, std::make_shared<CallbackGauge>(std::move(fn)));
}

void Registry::attach(const std::string& name, std::shared_ptr<Metric> metric) {
  if (!metric) throw std::invalid_argument("Registry::attach: null metric");
  rw::MutexLock lk(mu_);
  metrics_[name] = std::move(metric);
}

void Registry::drop(const std::string& prefix) {
  rw::MutexLock lk(mu_);
  for (auto it = metrics_.begin(); it != metrics_.end();) {
    if (under_prefix(it->first, prefix)) {
      it = metrics_.erase(it);
    } else {
      ++it;
    }
  }
}

Snapshot Registry::snapshot(const std::string& prefix) const {
  // Collect under the lock: a concurrent drop() then cannot return while a
  // callback gauge is mid-read, which is what makes drop-before-destroy a
  // sufficient lifetime protocol for callback registrants.
  rw::MutexLock lk(mu_);
  Snapshot out;
  for (const auto& [name, metric] : metrics_) {
    if (under_prefix(name, prefix)) metric->collect(name, out);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

std::size_t Registry::size() const {
  rw::MutexLock lk(mu_);
  return metrics_.size();
}

Registry& registry() {
  static Registry* global = new Registry;  // never destroyed: metrics may be
  return *global;                          // touched by late-exiting threads
}

// ---------------------------------------------------------------------------
// Scope

Scope::Scope(Registry& reg, std::string prefix)
    : reg_(&reg), prefix_(std::move(prefix)) {
  if (prefix_.empty()) throw std::invalid_argument("Scope: empty prefix");
}

Scope Scope::child(const std::string& sub) const {
  return Scope(*reg_, prefix_ + "/" + sub);
}

std::string Scope::full(const std::string& name) const {
  return prefix_ + "/" + name;
}

std::shared_ptr<Counter> Scope::counter(const std::string& name) const {
  return reg_->counter(full(name));
}

std::shared_ptr<Gauge> Scope::gauge(const std::string& name) const {
  return reg_->gauge(full(name));
}

std::shared_ptr<Histogram> Scope::histogram(
    const std::string& name, std::vector<double> upper_bounds) const {
  return reg_->histogram(full(name), std::move(upper_bounds));
}

std::shared_ptr<TraceRing> Scope::trace(const std::string& name,
                                        std::size_t capacity) const {
  return reg_->trace(full(name), capacity);
}

void Scope::callback(const std::string& name, CallbackGauge::Fn fn) const {
  reg_->callback(full(name), std::move(fn));
}

void Scope::drop() const { reg_->drop(prefix_); }

std::string render(const Snapshot& snapshot) {
  std::string out;
  for (const auto& e : snapshot) {
    out += e.name;
    out += '=';
    out += e.value;
    out += '\n';
  }
  return out;
}

}  // namespace rapidware::obs
