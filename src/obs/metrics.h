// Runtime observability: low-overhead metrics for live proxies.
//
// The paper's whole point is *introspectable* proxy chains — the
// ControlManager can ask a running proxy what it is doing — so every layer
// of the stack publishes counters here and the control protocol's STATS
// verb dumps them (docs/observability.md).
//
// Design contract:
//   * Hot path: mutating a Counter/Gauge is a single relaxed atomic op;
//     Histogram::observe is a handful of them. No locks, no allocation.
//   * Snapshot-on-read: readers pay for consistency, writers never do.
//     Registry::snapshot() renders every metric under a name prefix while
//     traffic keeps flowing; values are relaxed-atomic reads (each value is
//     exact, cross-metric skew of a few packets is possible and fine).
//   * Naming: '/'-separated scopes, e.g. "fec-audio-proxy/chain/fec-encode/
//     packets_in". Leaf sub-values use '.' (histogram "reconfig_us.p99").
//   * Compile-out: building with -DRW_OBS=OFF (-DRW_OBS_ENABLED=0) turns
//     every mutator into a no-op so the instrumentation's cost can be
//     measured (EXPERIMENTS.md records the delta; contract is < 2%).
//
// Lifetime: the Registry holds shared_ptr ownership of every metric, so a
// Counter outlives the component that bumps it. Callback gauges are the
// exception — they read live objects, so whoever registers one must drop()
// it before the object dies (FilterChain and Proxy do this for theirs).
// Callbacks run under the registry lock and must not acquire locks that are
// held while registering/dropping metrics (in particular: a FilterChain
// callback must never take the chain mutex).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#ifndef RW_OBS_ENABLED
#define RW_OBS_ENABLED 1
#endif

namespace rapidware::obs {

/// One rendered metric value: a flat name plus its value formatted as text
/// (integers without decorations, doubles via %.6g, trace events verbatim).
struct Entry {
  std::string name;
  std::string value;
};

using Snapshot = std::vector<Entry>;

/// Base class: anything a Registry can hold and render.
class Metric {
 public:
  virtual ~Metric() = default;

  /// Appends this metric's entries under `name` (a metric may render
  /// several, e.g. a histogram's count/sum/percentiles). Called with the
  /// registry lock held; implementations must be fast and lock-ordered
  /// below the registry (see header comment).
  virtual void collect(const std::string& name, Snapshot& out) const = 0;
};

/// Monotonic event count. add() is one relaxed fetch_add.
class Counter final : public Metric {
 public:
  void add(std::uint64_t n = 1) noexcept {
#if RW_OBS_ENABLED
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void collect(const std::string& name, Snapshot& out) const override;

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (queue depth, configured filters, ...).
class Gauge final : public Metric {
 public:
  void set(std::int64_t v) noexcept {
#if RW_OBS_ENABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(std::int64_t d) noexcept {
#if RW_OBS_ENABLED
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }

  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void collect(const std::string& name, Snapshot& out) const override;

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Pull gauge over a live object: the callback is invoked at snapshot time.
/// Registration-side lifetime rules apply (see header comment).
class CallbackGauge final : public Metric {
 public:
  using Fn = std::function<double()>;

  explicit CallbackGauge(Fn fn);

  void collect(const std::string& name, Snapshot& out) const override;

 private:
  Fn fn_;
};

/// Fixed-bucket histogram: cumulative-style buckets with caller-chosen
/// finite upper bounds plus an implicit +inf bucket. observe() is a short
/// linear scan (bucket lists are small) ending in one relaxed fetch_add, so
/// it is safe on latency-measurement paths.
class Histogram final : public Metric {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;

  /// Approximate percentile (0..100): upper bound of the bucket holding the
  /// target rank (the last finite bound for the +inf bucket).
  double percentile(double p) const noexcept;

  /// Renders name.count, name.sum, name.p50/.p90/.p99 and one cumulative
  /// name.le.<bound> entry per bucket.
  void collect(const std::string& name, Snapshot& out) const override;

  /// Bounds suited to splice/control-op latencies in microseconds.
  static std::vector<double> latency_us_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // one per bound + inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Bounded ring of timestamped events — the reconfiguration trace: who was
/// inserted/removed/retuned and when. Mutex-guarded; control-plane only
/// (never on a data path). Timestamps are steady-clock micros so events
/// across components order correctly.
class TraceRing final : public Metric {
 public:
  struct Event {
    std::uint64_t seq = 0;   // monotonically increasing, never reused
    util::Micros at = 0;     // steady-clock micros
    std::string text;
  };

  explicit TraceRing(std::size_t capacity);

  void record(std::string text);
  void record_at(util::Micros at, std::string text);

  /// Oldest-first copy of the retained events.
  std::vector<Event> events() const;

  std::uint64_t total_recorded() const;

  /// Renders one entry per retained event: name.<seq> = "t=<us> <text>".
  void collect(const std::string& name, Snapshot& out) const override;

 private:
  const std::size_t capacity_;
  mutable rw::Mutex mu_{"obs/trace_ring", rw::lockrank::kObsTrace};
  std::uint64_t next_seq_ RW_GUARDED_BY(mu_) = 0;
  std::deque<Event> ring_ RW_GUARDED_BY(mu_);
};

/// Named metric registry. Thread-safe; creation returns the existing metric
/// when one of the same name and type is already registered (so re-binding
/// a re-inserted filter resumes its counters), and replaces it when the
/// types differ (last writer wins).
class Registry {
 public:
  std::shared_ptr<Counter> counter(const std::string& name);
  std::shared_ptr<Gauge> gauge(const std::string& name);
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       std::vector<double> upper_bounds);
  std::shared_ptr<TraceRing> trace(const std::string& name,
                                   std::size_t capacity);
  void callback(const std::string& name, CallbackGauge::Fn fn);

  /// Registers an externally created metric under `name` (shared
  /// ownership), replacing any previous registration.
  void attach(const std::string& name, std::shared_ptr<Metric> metric);

  /// Removes the metric named exactly `prefix` and every metric under
  /// "<prefix>/...". Blocks until no snapshot is mid-collect, so after
  /// drop() returns it is safe to destroy objects a callback referenced.
  void drop(const std::string& prefix);

  /// Renders every metric whose name is `prefix` or starts with
  /// "<prefix>/" (empty prefix: everything), sorted by name.
  Snapshot snapshot(const std::string& prefix = "") const;

  std::size_t size() const;

 private:
  mutable rw::Mutex mu_{"obs/registry", rw::lockrank::kObsRegistry};
  std::map<std::string, std::shared_ptr<Metric>> metrics_ RW_GUARDED_BY(mu_);
};

/// The process-global registry — what a proxy's STATS verb serves.
Registry& registry();

/// Name-prefix helper: Scope(reg, "proxy/chain").counter("inserts") creates
/// "proxy/chain/inserts". Copyable; child() descends one level.
class Scope {
 public:
  Scope(Registry& reg, std::string prefix);

  Scope child(const std::string& sub) const;

  const std::string& prefix() const noexcept { return prefix_; }
  Registry& registry() const noexcept { return *reg_; }
  std::string full(const std::string& name) const;

  std::shared_ptr<Counter> counter(const std::string& name) const;
  std::shared_ptr<Gauge> gauge(const std::string& name) const;
  std::shared_ptr<Histogram> histogram(
      const std::string& name, std::vector<double> upper_bounds) const;
  std::shared_ptr<TraceRing> trace(const std::string& name,
                                   std::size_t capacity) const;
  void callback(const std::string& name, CallbackGauge::Fn fn) const;

  /// Drops everything under this scope.
  void drop() const;

 private:
  Registry* reg_;
  std::string prefix_;
};

/// "name=value\n" per entry — the STATS wire text.
std::string render(const Snapshot& snapshot);

/// Formats a double the way every metric does (integral values without a
/// decimal point, otherwise %.6g).
std::string format_value(double v);

}  // namespace rapidware::obs
