#include "obs/stats_log.h"

#include "util/logging.h"

namespace rapidware::obs {

StatsLogSink::StatsLogSink(Registry& registry, std::string prefix,
                           std::chrono::milliseconds period, Emit emit)
    : registry_(registry),
      prefix_(std::move(prefix)),
      period_(period),
      emit_(std::move(emit)) {
  if (!emit_) {
    emit_ = [](const std::string& text) { RW_INFO("stats") << "\n" << text; };
  }
  thread_ = std::thread([this] { loop(); });
}

StatsLogSink::~StatsLogSink() { stop(); }

void StatsLogSink::stop() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lk(mu_);
  stopped_ = true;
}

void StatsLogSink::loop() {
  for (;;) {
    {
      std::unique_lock lk(mu_);
      if (cv_.wait_for(lk, period_, [&] { return stop_; })) {
        break;
      }
    }
    emit_(render(registry_.snapshot(prefix_)));
  }
  // Final snapshot so a short-lived run still records its totals.
  emit_(render(registry_.snapshot(prefix_)));
}

}  // namespace rapidware::obs
