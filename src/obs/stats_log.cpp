#include "obs/stats_log.h"

#include "util/logging.h"

namespace rapidware::obs {

StatsLogSink::StatsLogSink(Registry& registry, std::string prefix,
                           std::chrono::milliseconds period, Emit emit)
    : registry_(registry),
      prefix_(std::move(prefix)),
      period_(period),
      emit_(emit ? std::move(emit) : Emit([](const std::string& text) {
        RW_INFO("stats") << "\n" << text;
      })) {
  rw::MutexLock lk(mu_);
  thread_ = std::thread([this] { loop(); });
}

StatsLogSink::~StatsLogSink() { stop(); }

void StatsLogSink::stop() {
  // The old "if (stopped_) return" fast path let two concurrent stop()
  // callers both reach thread_.join() — undefined behaviour on std::thread.
  // Instead exactly one caller moves the handle out under mu_ and joins it;
  // everyone else blocks on stopped_ so stop() still means "the logging
  // thread is gone" for every caller.
  std::thread reaper;
  {
    rw::MutexLock lk(mu_);
    stop_ = true;
    reaper = std::move(thread_);
  }
  cv_.notify_all();
  if (reaper.joinable()) {
    reaper.join();  // rw-lint: allow(RW008) stop() runs on the caller, not a dispatcher
    rw::MutexLock lk(mu_);
    stopped_ = true;
    cv_.notify_all();
  } else {
    rw::MutexLock lk(mu_);
    cv_.wait(mu_, [this] {  // rw-lint: allow(RW008) stop() runs on the caller, not a dispatcher
      mu_.assert_held();
      return stopped_;
    });
  }
}

void StatsLogSink::loop() {
  for (;;) {
    {
      rw::MutexLock lk(mu_);
      if (cv_.wait_for(mu_, period_, [this] {  // rw-lint: allow(RW008) the sink's own wall-clock pacing thread
            mu_.assert_held();
            return stop_;
          })) {
        break;
      }
    }
    emit_(render(registry_.snapshot(prefix_)));
  }
  // Final snapshot so a short-lived run still records its totals.
  emit_(render(registry_.snapshot(prefix_)));
}

}  // namespace rapidware::obs
