// Periodic stats-log sink: a background thread that renders a registry
// snapshot every `period` and hands the text to a sink (default: the
// process logger at info level). The operator's "top for proxies" when no
// ControlManager is attached; examples enable it via RW_STATS_LOG_MS.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace rapidware::obs {

class StatsLogSink {
 public:
  using Emit = std::function<void(const std::string& text)>;

  /// Starts logging `registry` entries under `prefix` every `period`.
  /// A null `emit` logs each snapshot via RW_INFO("stats").
  StatsLogSink(Registry& registry, std::string prefix,
               std::chrono::milliseconds period, Emit emit = nullptr);

  /// Stops and joins the logging thread.
  ~StatsLogSink();

  StatsLogSink(const StatsLogSink&) = delete;
  StatsLogSink& operator=(const StatsLogSink&) = delete;

  /// Stops early (idempotent); emits one final snapshot first.
  void stop();

 private:
  void loop();

  Registry& registry_;
  const std::string prefix_;
  const std::chrono::milliseconds period_;
  Emit emit_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace rapidware::obs
