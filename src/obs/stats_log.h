// Periodic stats-log sink: a background thread that renders a registry
// snapshot every `period` and hands the text to a sink (default: the
// process logger at info level). The operator's "top for proxies" when no
// ControlManager is attached; examples enable it via RW_STATS_LOG_MS.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::obs {

class StatsLogSink {
 public:
  using Emit = std::function<void(const std::string& text)>;

  /// Starts logging `registry` entries under `prefix` every `period`.
  /// A null `emit` logs each snapshot via RW_INFO("stats").
  StatsLogSink(Registry& registry, std::string prefix,
               std::chrono::milliseconds period, Emit emit = nullptr);

  /// Stops and joins the logging thread.
  ~StatsLogSink();

  StatsLogSink(const StatsLogSink&) = delete;
  StatsLogSink& operator=(const StatsLogSink&) = delete;

  /// Stops early (idempotent and safe to race: concurrent callers all
  /// return only after the logging thread has exited, but exactly one of
  /// them joins it). Emits one final snapshot first.
  void stop();

 private:
  void loop();

  Registry& registry_;
  const std::string prefix_;
  const std::chrono::milliseconds period_;
  const Emit emit_;

  rw::Mutex mu_{"obs/stats_log", rw::lockrank::kStatsLog};
  rw::CondVar cv_;
  bool stop_ RW_GUARDED_BY(mu_) = false;
  bool stopped_ RW_GUARDED_BY(mu_) = false;
  // Guarded so racing stop() calls cannot both reach thread_.join(): the
  // winner moves the handle out under mu_, losers wait on stopped_.
  std::thread thread_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::obs
