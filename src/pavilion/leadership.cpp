#include "pavilion/leadership.h"

#include "util/logging.h"
#include "util/serial.h"

namespace rapidware::pavilion {

util::Bytes FloorMessage::serialize() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.str(member);
  w.u32(reply_to.node);
  w.u16(reply_to.port);
  w.u64(seq);
  return w.take();
}

FloorMessage FloorMessage::parse(util::ByteSpan wire) {
  util::Reader r(wire);
  FloorMessage m;
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 3) {
    throw util::SerialError("FloorMessage: unknown type");
  }
  m.type = static_cast<FloorMsg>(type);
  m.member = r.str();
  m.reply_to.node = r.u32();
  m.reply_to.port = r.u16();
  m.seq = r.u64();
  return m;
}

FloorControl::FloorControl(std::string member,
                           std::shared_ptr<net::SimSocket> control,
                           net::Address announce_group, bool initial_leader)
    : member_(std::move(member)),
      control_(std::move(control)),
      announce_group_(announce_group),
      leader_(initial_leader),
      current_leader_(initial_leader ? member_ : "") {
  control_->join(announce_group_);
}

FloorControl::~FloorControl() { stop(); }

void FloorControl::start() {
  rw::MutexLock lk(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { service_loop(); });
}

void FloorControl::stop() {
  std::thread reaper;
  {
    rw::MutexLock lk(mu_);
    if (!running_) return;
    running_ = false;
    reaper = std::move(thread_);
  }
  control_->close();
  grant_cv_.notify_all();
  if (reaper.joinable()) reaper.join();
}

bool FloorControl::request_floor(net::Address leader_control, int timeout_ms) {
  {
    rw::MutexLock lk(mu_);
    if (leader_) return true;  // already holding the floor
    pending_grant_.reset();
  }
  FloorMessage request;
  request.type = FloorMsg::kRequest;
  request.member = member_;
  request.reply_to = control_->local();
  control_->send_to(leader_control, request.serialize());

  std::uint64_t seq = 0;
  {
    rw::MutexLock lk(mu_);
    if (!grant_cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms), [&] {
          mu_.assert_held();
          return pending_grant_.has_value();
        })) {
      return false;
    }
    // Granted: become leader and announce with the next sequence number.
    seq = pending_grant_->seq + 1;
    pending_grant_.reset();
    leader_ = true;
    current_leader_ = member_;
    seq_ = seq;
  }
  announce_leadership(seq);
  return true;
}

void FloorControl::announce_leadership(std::uint64_t seq) {
  FloorMessage announce;
  announce.type = FloorMsg::kNewLeader;
  announce.member = member_;
  announce.reply_to = control_->local();
  announce.seq = seq;
  control_->send_to(announce_group_, announce.serialize());
}

bool FloorControl::is_leader() const {
  rw::MutexLock lk(mu_);
  return leader_;
}

std::string FloorControl::current_leader() const {
  rw::MutexLock lk(mu_);
  return current_leader_;
}

std::uint64_t FloorControl::leadership_seq() const {
  rw::MutexLock lk(mu_);
  return seq_;
}

void FloorControl::set_on_leader_change(
    std::function<void(const std::string&)> cb) {
  rw::MutexLock lk(mu_);
  on_change_ = std::move(cb);
}

void FloorControl::set_grant_policy(
    std::function<bool(const std::string&)> policy) {
  rw::MutexLock lk(mu_);
  grant_policy_ = std::move(policy);
}

void FloorControl::service_loop() {
  for (;;) {
    auto datagram = control_->recv(-1);
    if (!datagram) break;
    FloorMessage message;
    try {
      message = FloorMessage::parse(datagram->payload);
    } catch (const std::exception& e) {
      RW_WARN(member_) << "bad floor message: " << e.what();
      continue;
    }

    switch (message.type) {
      case FloorMsg::kRequest: {
        std::function<void(const std::string&)> notify;
        bool granted = false;
        std::uint64_t seq = 0;
        {
          rw::MutexLock lk(mu_);
          if (!leader_) break;  // not ours to grant
          if (grant_policy_ && !grant_policy_(message.member)) break;
          leader_ = false;  // hand over the floor
          seq = seq_;
          granted = true;
        }
        if (granted) {
          FloorMessage grant;
          grant.type = FloorMsg::kGrant;
          grant.member = message.member;
          grant.seq = seq;
          control_->send_to(message.reply_to, grant.serialize());
        }
        (void)notify;
        break;
      }
      case FloorMsg::kGrant: {
        rw::MutexLock lk(mu_);
        if (message.member != member_) break;  // not for us
        pending_grant_ = message;
        grant_cv_.notify_all();
        break;
      }
      case FloorMsg::kNewLeader: {
        std::function<void(const std::string&)> notify;
        std::string who;
        {
          rw::MutexLock lk(mu_);
          if (message.seq <= seq_ && !current_leader_.empty()) break;
          seq_ = message.seq;
          current_leader_ = message.member;
          leader_ = (message.member == member_);
          notify = on_change_;
          who = current_leader_;
        }
        if (notify) notify(who);
        break;
      }
    }
  }
}

}  // namespace rapidware::pavilion
