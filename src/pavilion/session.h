// Collaborative browsing session — Pavilion's default mode (Section 2,
// Figure 1). The leader's browser interface multicasts URL announcements;
// the leader's HTTP proxy fetches each resource and multicasts the
// contents; member browser interfaces render what arrives. Floor control
// decides who leads (leadership.h).
//
// A member normally joins the session's multicast groups directly (wired
// hosts); a resource-limited member may instead receive contents through a
// RAPIDware proxy chain by passing its own content-delivery socket.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pavilion/leadership.h"
#include "pavilion/web.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::pavilion {

/// The session's multicast groups.
struct SessionGroups {
  net::Address floor;     // leadership announcements
  net::Address data;      // URL announcements + resource contents

  /// Conventional layout: floor on group index `base`, data on `base + 1`.
  static SessionGroups standard(std::uint32_t base = 100) {
    return {net::multicast_group(base, 4100),
            net::multicast_group(base + 1, 4200)};
  }
};

enum class SessionMsg : std::uint8_t {
  kUrlAnnounce = 1,
  kResource = 2,
};

class SessionMember {
 public:
  /// `web` is the origin-server fabric the leader fetches from (shared by
  /// all members; only the leader uses it). If `content_socket` is given,
  /// resource contents are read from it instead of the data group — the
  /// hook for proxy-fed wireless members.
  SessionMember(std::string name, net::SimNetwork& net, net::NodeId node,
                SessionGroups groups, WebServer* web,
                bool initial_leader = false,
                std::shared_ptr<net::SimSocket> content_socket = nullptr);
  ~SessionMember();

  SessionMember(const SessionMember&) = delete;
  SessionMember& operator=(const SessionMember&) = delete;

  void start();
  void stop();

  const std::string& name() const noexcept { return name_; }
  FloorControl& floor() { return floor_; }
  net::Address control_address() const { return floor_socket_->local(); }

  /// Leader-only: announce the URL, fetch it (plus `assets`), and
  /// multicast the contents. Returns false if this member does not hold
  /// the floor or the main resource does not exist.
  bool navigate(const std::string& url,
                const std::vector<std::string>& assets = {});

  /// Member-side browsing state.
  std::vector<std::string> urls_seen() const;
  std::optional<WebResource> page(const std::string& url) const;
  std::size_t resources_received() const;
  std::uint64_t bytes_received() const;

  /// Blocks until a resource body for `url` has arrived.
  bool wait_for_page(const std::string& url, int timeout_ms = 5000);

 private:
  void data_loop();
  void content_loop();
  void handle_message(util::ByteSpan payload);

  const std::string name_;
  net::SimNetwork& net_;
  const SessionGroups groups_;
  WebServer* const web_;

  const std::shared_ptr<net::SimSocket> floor_socket_;
  const std::shared_ptr<net::SimSocket> data_socket_;
  const std::shared_ptr<net::SimSocket> content_socket_;  // optional proxy feed
  FloorControl floor_;  // rw-lint: allow(RW003) internally synchronized

  mutable rw::Mutex mu_{"pavilion/session", rw::lockrank::kPavilionSession};
  rw::CondVar cv_;
  std::vector<std::string> urls_ RW_GUARDED_BY(mu_);
  std::map<std::string, WebResource> pages_ RW_GUARDED_BY(mu_);
  std::uint64_t bytes_ RW_GUARDED_BY(mu_) = 0;
  // Handles move out under mu_ in stop() so racing stops join exactly once.
  std::thread data_thread_ RW_GUARDED_BY(mu_);
  std::thread content_thread_ RW_GUARDED_BY(mu_);
  bool running_ RW_GUARDED_BY(mu_) = false;
};

}  // namespace rapidware::pavilion
