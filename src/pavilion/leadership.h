// Pavilion's leadership protocol (Section 2, Figure 1): session floor
// control. One participant holds the floor (the "leader"); others send a
// Request, the leader Grants to exactly one of them, and a NewLeader
// announcement (with a sequence number) tells every participant who drives
// the session now.
//
// The protocol runs over the control port of each participant and a
// session-wide multicast group for announcements. It tolerates lost
// announcements by sequencing: a participant accepts any announcement with
// a newer sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "net/sim_network.h"
#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::pavilion {

enum class FloorMsg : std::uint8_t {
  kRequest = 1,   // member -> leader: may I lead?
  kGrant = 2,     // leader -> member: you lead now
  kNewLeader = 3, // multicast: leader change announcement (seq, who)
};

struct FloorMessage {
  FloorMsg type = FloorMsg::kRequest;
  std::string member;       // requester / new leader name
  net::Address reply_to{};  // where the requester listens
  std::uint64_t seq = 0;    // for kNewLeader

  util::Bytes serialize() const;
  static FloorMessage parse(util::ByteSpan wire);

  bool operator==(const FloorMessage&) const = default;
};

/// One participant's view of the floor-control protocol.
class FloorControl {
 public:
  /// `control` is this member's bound control socket; `announce` the
  /// session's announcement multicast group (joined by this constructor).
  FloorControl(std::string member, std::shared_ptr<net::SimSocket> control,
               net::Address announce_group, bool initial_leader = false);
  ~FloorControl();

  FloorControl(const FloorControl&) = delete;
  FloorControl& operator=(const FloorControl&) = delete;

  void start();
  void stop();

  /// Asks the current leader for the floor. Returns true when granted (the
  /// grant arrives and this member announces itself as the new leader);
  /// false on timeout.
  bool request_floor(net::Address leader_control, int timeout_ms = 2000);

  bool is_leader() const;
  std::string current_leader() const;
  std::uint64_t leadership_seq() const;

  /// Invoked (from the service thread) whenever leadership changes.
  void set_on_leader_change(std::function<void(const std::string&)> cb);

  /// Policy hook: should an incoming request be granted? Default: yes.
  void set_grant_policy(std::function<bool(const std::string&)> policy);

 private:
  void service_loop();
  void announce_leadership(std::uint64_t seq);

  const std::string member_;
  const std::shared_ptr<net::SimSocket> control_;
  const net::Address announce_group_;

  mutable rw::Mutex mu_{"pavilion/floor", rw::lockrank::kPavilionFloor};
  bool leader_ RW_GUARDED_BY(mu_);
  std::string current_leader_ RW_GUARDED_BY(mu_);
  std::uint64_t seq_ RW_GUARDED_BY(mu_) = 0;
  std::function<void(const std::string&)> on_change_ RW_GUARDED_BY(mu_);
  std::function<bool(const std::string&)> grant_policy_ RW_GUARDED_BY(mu_);
  std::optional<FloorMessage> pending_grant_ RW_GUARDED_BY(mu_);
  rw::CondVar grant_cv_;
  // Joined by whichever stop() wins: the handle moves out under mu_ so
  // racing stops cannot both reach join() (the StatsLogSink pattern).
  std::thread thread_ RW_GUARDED_BY(mu_);
  bool running_ RW_GUARDED_BY(mu_) = false;
};

}  // namespace rapidware::pavilion
