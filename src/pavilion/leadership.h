// Pavilion's leadership protocol (Section 2, Figure 1): session floor
// control. One participant holds the floor (the "leader"); others send a
// Request, the leader Grants to exactly one of them, and a NewLeader
// announcement (with a sequence number) tells every participant who drives
// the session now.
//
// The protocol runs over the control port of each participant and a
// session-wide multicast group for announcements. It tolerates lost
// announcements by sequencing: a participant accepts any announcement with
// a newer sequence number.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "net/sim_network.h"
#include "util/bytes.h"

namespace rapidware::pavilion {

enum class FloorMsg : std::uint8_t {
  kRequest = 1,   // member -> leader: may I lead?
  kGrant = 2,     // leader -> member: you lead now
  kNewLeader = 3, // multicast: leader change announcement (seq, who)
};

struct FloorMessage {
  FloorMsg type = FloorMsg::kRequest;
  std::string member;       // requester / new leader name
  net::Address reply_to{};  // where the requester listens
  std::uint64_t seq = 0;    // for kNewLeader

  util::Bytes serialize() const;
  static FloorMessage parse(util::ByteSpan wire);

  bool operator==(const FloorMessage&) const = default;
};

/// One participant's view of the floor-control protocol.
class FloorControl {
 public:
  /// `control` is this member's bound control socket; `announce` the
  /// session's announcement multicast group (joined by this constructor).
  FloorControl(std::string member, std::shared_ptr<net::SimSocket> control,
               net::Address announce_group, bool initial_leader = false);
  ~FloorControl();

  FloorControl(const FloorControl&) = delete;
  FloorControl& operator=(const FloorControl&) = delete;

  void start();
  void stop();

  /// Asks the current leader for the floor. Returns true when granted (the
  /// grant arrives and this member announces itself as the new leader);
  /// false on timeout.
  bool request_floor(net::Address leader_control, int timeout_ms = 2000);

  bool is_leader() const;
  std::string current_leader() const;
  std::uint64_t leadership_seq() const;

  /// Invoked (from the service thread) whenever leadership changes.
  void set_on_leader_change(std::function<void(const std::string&)> cb);

  /// Policy hook: should an incoming request be granted? Default: yes.
  void set_grant_policy(std::function<bool(const std::string&)> policy);

 private:
  void service_loop();
  void announce_leadership(std::uint64_t seq);

  std::string member_;
  std::shared_ptr<net::SimSocket> control_;
  net::Address announce_group_;

  mutable std::mutex mu_;
  bool leader_;
  std::string current_leader_;
  std::uint64_t seq_ = 0;
  std::function<void(const std::string&)> on_change_;
  std::function<bool(const std::string&)> grant_policy_;
  std::optional<FloorMessage> pending_grant_;
  std::condition_variable grant_cv_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace rapidware::pavilion
