#include "pavilion/web.h"

#include "util/serial.h"

namespace rapidware::pavilion {

WebServer::WebServer(std::uint64_t seed) : rng_(seed) {}

void WebServer::put(const std::string& url, WebResource resource) {
  rw::MutexLock lk(mu_);
  content_[url] = std::move(resource);
}

std::optional<WebResource> WebServer::get(const std::string& url) {
  rw::MutexLock lk(mu_);
  ++requests_;
  if (auto it = content_.find(url); it != content_.end()) return it->second;
  if (url.size() >= 5 && url.substr(url.size() - 5) == ".html") {
    WebResource page = synthesize_page_locked(url);
    content_[url] = page;  // stable across repeat fetches
    return page;
  }
  return std::nullopt;
}

std::uint64_t WebServer::requests() const {
  rw::MutexLock lk(mu_);
  return requests_;
}

WebResource WebServer::synthesize_page_locked(const std::string& url) {
  // Deterministic pseudo-HTML: repetitive structure (compressible, like
  // real markup) with a sprinkle of unique content.
  std::string html = "<html><head><title>" + url + "</title>";
  html += "<link rel=stylesheet href=/style.css></head><body>";
  const int paragraphs = 3 + static_cast<int>(rng_.next_below(6));
  for (int p = 0; p < paragraphs; ++p) {
    html += "<p class=\"body-text\">";
    const int words = 30 + static_cast<int>(rng_.next_below(40));
    for (int w = 0; w < words; ++w) {
      static const char* kWords[] = {"adaptive", "middleware", "proxy",
                                     "stream",   "wireless",  "filter",
                                     "mobile",   "session",   "composable"};
      html += kWords[rng_.next_below(std::size(kWords))];
      html += ' ';
    }
    html += "</p>";
  }
  html += "<img src=/logo.png></body></html>";
  return WebResource{"text/html", util::to_bytes(html)};
}

util::Bytes ResourcePacket::serialize() const {
  util::Writer w;
  w.str(url);
  w.str(content_type);
  w.blob(body);
  return w.take();
}

ResourcePacket ResourcePacket::parse(util::ByteSpan wire) {
  util::Reader r(wire);
  ResourcePacket p;
  p.url = r.str();
  p.content_type = r.str();
  p.body = r.blob();
  return p;
}

}  // namespace rapidware::pavilion
