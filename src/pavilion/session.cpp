#include "pavilion/session.h"

#include "util/logging.h"
#include "util/serial.h"

namespace rapidware::pavilion {

SessionMember::SessionMember(std::string name, net::SimNetwork& net,
                             net::NodeId node, SessionGroups groups,
                             WebServer* web, bool initial_leader,
                             std::shared_ptr<net::SimSocket> content_socket)
    : name_(std::move(name)),
      net_(net),
      groups_(groups),
      web_(web),
      floor_socket_(net.open(node)),
      data_socket_(net.open(node)),
      content_socket_(std::move(content_socket)),
      floor_(name_, floor_socket_, groups.floor, initial_leader) {
  // A proxy-fed member hears the session only through its proxy (Figure
  // 2): everything a wired member would take from the data group arrives
  // relayed on the content socket instead.
  if (!content_socket_) data_socket_->join(groups_.data);
}

SessionMember::~SessionMember() { stop(); }

void SessionMember::start() {
  {
    rw::MutexLock lk(mu_);
    if (running_) return;
    running_ = true;
    if (content_socket_) {
      content_thread_ = std::thread([this] { content_loop(); });
    } else {
      data_thread_ = std::thread([this] { data_loop(); });
    }
  }
  floor_.start();
}

void SessionMember::stop() {
  std::thread data_reaper, content_reaper;
  {
    rw::MutexLock lk(mu_);
    if (!running_) return;
    running_ = false;
    data_reaper = std::move(data_thread_);
    content_reaper = std::move(content_thread_);
  }
  floor_.stop();
  data_socket_->close();
  if (content_socket_) content_socket_->close();
  if (data_reaper.joinable()) data_reaper.join();
  if (content_reaper.joinable()) content_reaper.join();
}

bool SessionMember::navigate(const std::string& url,
                             const std::vector<std::string>& assets) {
  if (!floor_.is_leader()) return false;
  const auto main = web_->get(url);
  if (!main) return false;

  // Figure 1: the browser interface multicasts the URL request; the
  // leader's proxy multicasts contents as they are retrieved.
  util::Writer announce;
  announce.u8(static_cast<std::uint8_t>(SessionMsg::kUrlAnnounce));
  announce.str(url);
  data_socket_->send_to(groups_.data, announce.bytes());

  auto publish = [&](const std::string& resource_url,
                     const WebResource& resource) {
    ResourcePacket packet{resource_url, resource.content_type, resource.body};
    util::Writer w;
    w.u8(static_cast<std::uint8_t>(SessionMsg::kResource));
    w.raw(packet.serialize());
    data_socket_->send_to(groups_.data, w.bytes());
  };
  publish(url, *main);
  // The leader sees its own navigation immediately (no multicast loopback).
  handle_message([&] {
    util::Writer w;
    w.u8(static_cast<std::uint8_t>(SessionMsg::kResource));
    w.raw(ResourcePacket{url, main->content_type, main->body}.serialize());
    return w.take();
  }());
  for (const auto& asset : assets) {
    if (const auto body = web_->get(asset)) publish(asset, *body);
  }
  return true;
}

void SessionMember::data_loop() {
  for (;;) {
    auto d = data_socket_->recv(-1);
    if (!d) break;
    handle_message(d->payload);
  }
}

void SessionMember::content_loop() {
  // Proxy-fed path: the RAPIDware proxy delivers (possibly transcoded or
  // cache-compacted) resource packets over unicast.
  for (;;) {
    auto d = content_socket_->recv(-1);
    if (!d) break;
    handle_message(d->payload);
  }
}

void SessionMember::handle_message(util::ByteSpan payload) {
  try {
    util::Reader r(payload);
    const auto kind = static_cast<SessionMsg>(r.u8());
    if (kind == SessionMsg::kUrlAnnounce) {
      const std::string url = r.str();
      rw::MutexLock lk(mu_);
      urls_.push_back(url);
      cv_.notify_all();
      return;
    }
    if (kind == SessionMsg::kResource) {
      const ResourcePacket packet = ResourcePacket::parse(
          util::ByteSpan(payload.data() + 1, payload.size() - 1));
      rw::MutexLock lk(mu_);
      bytes_ += packet.body.size();
      pages_[packet.url] = WebResource{packet.content_type, packet.body};
      cv_.notify_all();
      return;
    }
    RW_WARN(name_) << "unknown session message kind";
  } catch (const std::exception& e) {
    RW_WARN(name_) << "bad session message: " << e.what();
  }
}

std::vector<std::string> SessionMember::urls_seen() const {
  rw::MutexLock lk(mu_);
  return urls_;
}

std::optional<WebResource> SessionMember::page(const std::string& url) const {
  rw::MutexLock lk(mu_);
  auto it = pages_.find(url);
  if (it == pages_.end()) return std::nullopt;
  return it->second;
}

std::size_t SessionMember::resources_received() const {
  rw::MutexLock lk(mu_);
  return pages_.size();
}

std::uint64_t SessionMember::bytes_received() const {
  rw::MutexLock lk(mu_);
  return bytes_;
}

bool SessionMember::wait_for_page(const std::string& url, int timeout_ms) {
  rw::MutexLock lk(mu_);
  return cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms), [&] {
    mu_.assert_held();
    return pages_.count(url) != 0;
  });
}

}  // namespace rapidware::pavilion
