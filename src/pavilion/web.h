// Simulated web: origin servers with URL -> resource bodies and an HTTP
// proxy fetcher. Pavilion's default mode is collaborative web browsing
// (Section 2, Figure 1): the leader's proxy GETs each resource and
// multicasts the contents to the group. This substrate provides the GET.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace rapidware::pavilion {

struct WebResource {
  std::string content_type;
  util::Bytes body;

  bool operator==(const WebResource&) const = default;
};

/// In-process origin server: a URL-keyed content store with deterministic
/// synthetic page generation for URLs that were never explicitly published.
class WebServer {
 public:
  explicit WebServer(std::uint64_t seed = 2001);

  /// Publishes a resource at a URL.
  void put(const std::string& url, WebResource resource);

  /// Fetches a resource. Unknown ".html" URLs are synthesized (a page of
  /// deterministic pseudo-markup referencing shared assets) so that
  /// arbitrary browsing sessions work out of the box; other unknown URLs
  /// return nullopt (a 404).
  std::optional<WebResource> get(const std::string& url);

  std::uint64_t requests() const;

 private:
  WebResource synthesize_page_locked(const std::string& url) RW_REQUIRES(mu_);

  mutable rw::Mutex mu_{"pavilion/web", rw::lockrank::kPavilionWeb};
  std::map<std::string, WebResource> content_ RW_GUARDED_BY(mu_);
  util::Rng rng_ RW_GUARDED_BY(mu_);
  std::uint64_t requests_ RW_GUARDED_BY(mu_) = 0;
};

/// The wire form of a multicast resource announcement: URL + content.
struct ResourcePacket {
  std::string url;
  std::string content_type;
  util::Bytes body;

  util::Bytes serialize() const;
  static ResourcePacket parse(util::ByteSpan wire);

  bool operator==(const ResourcePacket&) const = default;
};

}  // namespace rapidware::pavilion
