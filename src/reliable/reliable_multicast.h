// Reliable multicast with FEC-assisted repair — the proxy duty the paper
// cites as "forward error correction for ... reliable data delivery [16]",
// and the quantitative basis of its Section 5 observation that for
// multicast "a single parity packet can be used to correct independent
// single-packet losses among different receivers".
//
// The sender packs payloads into blocks of k, transmits the k data symbols
// (FEC group wire format), and answers receiver NACKs in one of two modes:
//
//   * kArq    — retransmit exactly the data packets each receiver missed;
//               repair traffic grows with the number of *distinct* losses
//               across the receiver set.
//   * kParity — transmit fresh parity symbols for the block; ONE parity
//               symbol simultaneously repairs any single (different!) loss
//               at every receiver, so repair traffic grows with the *worst
//               single receiver*, not the union.
//
// Receivers detect gaps when a newer block opens (and on explicit tick()),
// NACK the sender, rebuild blocks from any k of the received symbols, and
// deliver payloads in order. Everything is deterministic: no internal
// timers — the harness drives tick().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "fec/fec_group.h"
#include "net/sim_network.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace rapidware::reliable {

enum class RepairMode : std::uint8_t {
  kArq = 0,     // retransmit the exact missing data symbols
  kParity = 1,  // transmit additional parity symbols
};

/// Receiver -> sender: "block `block_id`: I hold `received` symbols; the
/// data indices in `missing_data` are gone."
struct Nack {
  std::uint32_t block_id = 0;
  std::uint16_t received = 0;          // symbols held (data + parity)
  std::vector<std::uint8_t> missing_data;  // missing data indices (< k)

  util::Bytes serialize() const;
  static Nack parse(util::ByteSpan wire);

  bool operator==(const Nack&) const = default;
};

struct SenderStats {
  std::uint64_t blocks_sent = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t retransmissions = 0;   // ARQ repair packets
  std::uint64_t parity_packets = 0;    // parity repair packets
  std::uint64_t nacks_received = 0;

  std::uint64_t repair_packets() const {
    return retransmissions + parity_packets;
  }
};

/// Block-based reliable multicast sender. Not thread-safe; the owner calls
/// send()/flush()/service() from one thread (or locks externally).
class ReliableMulticastSender {
 public:
  /// `k`: block size; `max_parity`: repair-parity budget per block.
  ReliableMulticastSender(std::shared_ptr<net::SimSocket> socket,
                          net::Address group, std::size_t k,
                          RepairMode mode, std::size_t max_parity = 32);

  /// Queues one payload; transmits the block when it fills.
  void send(util::ByteSpan payload);

  /// Transmits any partial block (short code, same parity budget).
  void flush();

  /// Drains pending NACKs from the socket and transmits repairs. Call
  /// regularly (it uses a zero timeout).
  void service();

  const SenderStats& stats() const noexcept { return stats_; }

 private:
  struct Block {
    std::size_t k = 0;
    std::uint16_t symbol_len = 0;
    std::vector<util::Bytes> data;          // raw payloads
    std::vector<util::Bytes> symbols;       // padded RS symbols (lazy)
    std::size_t next_parity_index = 0;      // next unused parity slot
  };

  void transmit_block();
  void send_symbol(std::uint32_t block_id, Block& block, std::size_t index);
  void repair_block(std::uint32_t block_id,
                    const std::set<std::uint8_t>& missing_union,
                    std::size_t max_needed);

  std::shared_ptr<net::SimSocket> socket_;
  net::Address group_;
  std::size_t k_;
  RepairMode mode_;
  std::size_t max_parity_;

  std::uint32_t next_block_id_ = 0;
  std::vector<util::Bytes> pending_;
  std::map<std::uint32_t, Block> history_;
  SenderStats stats_;
};

struct ReceiverStats {
  std::uint64_t packets_received = 0;
  std::uint64_t blocks_completed = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t recovered_via_parity = 0;
};

/// Reliable multicast receiver. Drive it by calling poll() (drains the
/// socket) and tick() (re-NACK overdue blocks); deliveries come out of
/// take_delivered() in order.
class ReliableMulticastReceiver {
 public:
  ReliableMulticastReceiver(std::shared_ptr<net::SimSocket> socket,
                            net::Address sender, net::Address group,
                            util::Clock& clock,
                            util::Micros nack_interval_us = 50'000);

  /// Drains available packets (zero timeout); returns how many arrived.
  std::size_t poll();

  /// Sends NACKs for incomplete blocks whose last NACK is older than the
  /// interval. Call on the harness's cadence.
  void tick();

  /// In-order delivered payloads accumulated so far.
  std::vector<util::Bytes> take_delivered();

  /// True when every block up to and including `last_block` is delivered.
  bool complete_through(std::uint32_t last_block) const;

  const ReceiverStats& stats() const noexcept { return stats_; }

 private:
  struct Block {
    std::uint8_t k = 0;
    std::uint16_t symbol_len = 0;
    std::map<std::uint8_t, util::Bytes> symbols;  // index -> body
    util::Micros last_nack_at = -1;
    bool done = false;
  };

  void on_packet(const net::Datagram& datagram);
  void try_complete(std::uint32_t block_id, Block& block);
  void send_nack(std::uint32_t block_id, Block& block);
  void release_in_order();

  std::shared_ptr<net::SimSocket> socket_;
  net::Address sender_;
  util::Clock& clock_;
  util::Micros nack_interval_us_;

  std::map<std::uint32_t, Block> blocks_;
  std::map<std::uint32_t, std::vector<util::Bytes>> completed_;  // payloads
  std::uint32_t next_release_ = 0;
  std::deque<util::Bytes> delivered_;
  ReceiverStats stats_;
};

}  // namespace rapidware::reliable
