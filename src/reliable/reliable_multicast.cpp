#include "reliable/reliable_multicast.h"

#include <algorithm>

#include "util/serial.h"

namespace rapidware::reliable {
namespace {

constexpr std::size_t kHistoryLimit = 1024;  // blocks kept for repair

const fec::ReedSolomonCode& code_for(std::size_t n, std::size_t k) {
  thread_local std::map<std::pair<std::size_t, std::size_t>,
                        fec::ReedSolomonCode>
      cache;
  auto it = cache.find({n, k});
  if (it == cache.end()) {
    it = cache.try_emplace({n, k}, fec::ReedSolomonCode(n, k)).first;
  }
  return it->second;
}

}  // namespace

util::Bytes Nack::serialize() const {
  util::Writer w;
  w.u32(block_id);
  w.u16(received);
  w.u16(static_cast<std::uint16_t>(missing_data.size()));
  for (const std::uint8_t idx : missing_data) w.u8(idx);
  return w.take();
}

Nack Nack::parse(util::ByteSpan wire) {
  util::Reader r(wire);
  Nack nack;
  nack.block_id = r.u32();
  nack.received = r.u16();
  const std::uint16_t count = r.u16();
  nack.missing_data.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) nack.missing_data.push_back(r.u8());
  return nack;
}

// ---------------------------------------------------------------------------
// Sender

ReliableMulticastSender::ReliableMulticastSender(
    std::shared_ptr<net::SimSocket> socket, net::Address group, std::size_t k,
    RepairMode mode, std::size_t max_parity)
    : socket_(std::move(socket)),
      group_(group),
      k_(k),
      mode_(mode),
      max_parity_(max_parity) {
  if (k_ == 0 || max_parity_ == 0 || k_ + max_parity_ >= 256) {
    throw fec::CodingError(
        "ReliableMulticastSender: need 0 < k, 0 < parity, k+parity < 256");
  }
}

void ReliableMulticastSender::send(util::ByteSpan payload) {
  pending_.emplace_back(payload.begin(), payload.end());
  if (pending_.size() == k_) transmit_block();
}

void ReliableMulticastSender::flush() {
  if (!pending_.empty()) transmit_block();
}

void ReliableMulticastSender::transmit_block() {
  const std::uint32_t block_id = next_block_id_++;
  Block block;
  block.k = pending_.size();
  std::size_t max_payload = 0;
  for (const auto& p : pending_) max_payload = std::max(max_payload, p.size());
  block.symbol_len = static_cast<std::uint16_t>(max_payload + 2);
  block.data = std::move(pending_);
  pending_.clear();

  auto [it, _] = history_.emplace(block_id, std::move(block));
  for (std::size_t i = 0; i < it->second.k; ++i) {
    send_symbol(block_id, it->second, i);
    ++stats_.data_packets;
  }
  ++stats_.blocks_sent;
  while (history_.size() > kHistoryLimit) history_.erase(history_.begin());
}

void ReliableMulticastSender::send_symbol(std::uint32_t block_id,
                                          Block& block, std::size_t index) {
  const auto n = static_cast<std::uint8_t>(block.k + max_parity_);
  util::Writer w;
  fec::GroupHeader{block_id, static_cast<std::uint8_t>(index),
                   static_cast<std::uint8_t>(block.k), n, block.symbol_len}
      .encode_to(w);
  if (index < block.k) {
    w.raw(block.data[index]);
  } else {
    // Lazily build the padded RS symbols, then synthesize one parity.
    if (block.symbols.empty()) {
      block.symbols.reserve(block.k);
      for (const auto& p : block.data) {
        block.symbols.push_back(fec::make_symbol(p, block.symbol_len));
      }
    }
    w.raw(code_for(block.k + max_parity_, block.k)
              .encode_one(block.symbols, index));
  }
  socket_->send_to(group_, w.bytes());
}

void ReliableMulticastSender::service() {
  // Drain and AGGREGATE the pending NACKs per block before repairing.
  // Aggregation is where multicast FEC wins: many receivers missing
  // different packets of one block collapse into max(needed) parity
  // symbols, while ARQ must cover the union of their losses.
  struct Demand {
    std::set<std::uint8_t> missing_union;
    std::size_t max_needed = 0;
  };
  std::map<std::uint32_t, Demand> demands;
  for (;;) {
    auto datagram = socket_->recv(0);
    if (!datagram) break;
    try {
      const Nack nack = Nack::parse(datagram->payload);
      ++stats_.nacks_received;
      Demand& demand = demands[nack.block_id];
      demand.missing_union.insert(nack.missing_data.begin(),
                                  nack.missing_data.end());
      const std::size_t needed = nack.missing_data.size();
      demand.max_needed = std::max(demand.max_needed, needed);
    } catch (const std::exception&) {
      // Malformed NACK: drop.
    }
  }
  for (const auto& [block_id, demand] : demands) {
    repair_block(block_id, demand.missing_union, demand.max_needed);
  }
}

void ReliableMulticastSender::repair_block(
    std::uint32_t block_id, const std::set<std::uint8_t>& missing_union,
    std::size_t max_needed) {
  auto it = history_.find(block_id);
  if (it == history_.end()) return;  // too old to repair
  Block& block = it->second;

  if (mode_ == RepairMode::kArq) {
    for (const std::uint8_t idx : missing_union) {
      if (idx >= block.k) continue;
      send_symbol(block_id, block, idx);
      ++stats_.retransmissions;
    }
    return;
  }
  // Parity repair: max_needed fresh parity symbols cover every NACKing
  // receiver simultaneously; when the budget wraps we re-send earlier
  // parity (still useful to receivers that lost it).
  for (std::size_t i = 0; i < max_needed; ++i) {
    const std::size_t slot = (block.next_parity_index + i) % max_parity_;
    send_symbol(block_id, block, block.k + slot);
    ++stats_.parity_packets;
  }
  block.next_parity_index =
      (block.next_parity_index + max_needed) % max_parity_;
}

// ---------------------------------------------------------------------------
// Receiver

ReliableMulticastReceiver::ReliableMulticastReceiver(
    std::shared_ptr<net::SimSocket> socket, net::Address sender,
    net::Address group, util::Clock& clock, util::Micros nack_interval_us)
    : socket_(std::move(socket)),
      sender_(sender),
      clock_(clock),
      nack_interval_us_(nack_interval_us) {
  socket_->join(group);
}

std::size_t ReliableMulticastReceiver::poll() {
  std::size_t count = 0;
  for (;;) {
    auto datagram = socket_->recv(0);
    if (!datagram) break;
    on_packet(*datagram);
    ++count;
  }
  return count;
}

void ReliableMulticastReceiver::on_packet(const net::Datagram& datagram) {
  fec::GroupHeader header;
  util::Bytes body;  // rw-lint: allow(RW006) symbol is retained in blocks_ until the FEC group completes
  try {
    util::Reader r(datagram.payload);
    header = fec::GroupHeader::decode_from(r);
    body = r.raw(r.remaining());
  } catch (const std::exception&) {
    return;  // not a data packet
  }
  ++stats_.packets_received;
  if (header.group_id < next_release_) return;  // already delivered

  Block& block = blocks_[header.group_id];
  if (block.symbols.empty()) {
    block.k = header.k;
    block.symbol_len = header.symbol_len;
  }
  if (block.done) return;
  block.symbols.emplace(header.index, std::move(body));
  try_complete(header.group_id, block);

  // Gap detection: an arrival for this block implies older incomplete
  // blocks lost packets; give them a first NACK right away.
  const util::Micros now = clock_.now();
  for (auto& [id, older] : blocks_) {
    if (id >= header.group_id) break;
    if (!older.done && older.last_nack_at < 0) {
      send_nack(id, older);
      older.last_nack_at = now;
    }
  }
  release_in_order();
}

void ReliableMulticastReceiver::try_complete(std::uint32_t block_id,
                                             Block& block) {
  if (block.done || block.symbols.size() < block.k) return;
  const std::size_t n = block.symbols.rbegin()->first + 1;
  std::vector<std::optional<util::Bytes>> received(
      std::max<std::size_t>(n, block.k));
  bool used_parity = false;
  for (const auto& [index, body] : block.symbols) {
    if (index < block.k) {
      received[index] = fec::make_symbol(body, block.symbol_len);
    } else {
      received[index] = body;
      used_parity = true;
    }
  }
  // Generator rows depend only on the row index, not on n, so a code sized
  // to the highest index seen decodes symbols the sender produced under
  // its (k + max_parity, k) code.
  const auto& code = code_for(received.size(), block.k);
  std::vector<util::Bytes> symbols = code.decode(received);

  std::vector<util::Bytes> payloads;
  payloads.reserve(block.k);
  bool data_was_missing = false;
  for (std::size_t i = 0; i < block.k; ++i) {
    if (block.symbols.count(static_cast<std::uint8_t>(i)) == 0) {
      data_was_missing = true;
    }
    payloads.push_back(fec::parse_symbol(symbols[i]));
  }
  completed_[block_id] = std::move(payloads);
  block.done = true;
  block.symbols.clear();
  ++stats_.blocks_completed;
  if (used_parity && data_was_missing) ++stats_.recovered_via_parity;
}

void ReliableMulticastReceiver::send_nack(std::uint32_t block_id,
                                          Block& block) {
  Nack nack;
  nack.block_id = block_id;
  nack.received = static_cast<std::uint16_t>(block.symbols.size());
  for (std::uint8_t i = 0; i < block.k; ++i) {
    if (block.symbols.count(i) == 0) nack.missing_data.push_back(i);
  }
  socket_->send_to(sender_, nack.serialize());
  ++stats_.nacks_sent;
}

void ReliableMulticastReceiver::tick() {
  const util::Micros now = clock_.now();
  for (auto& [id, block] : blocks_) {
    if (block.done) continue;
    if (block.last_nack_at >= 0 && now - block.last_nack_at < nack_interval_us_) {
      continue;
    }
    send_nack(id, block);
    block.last_nack_at = now;
  }
}

void ReliableMulticastReceiver::release_in_order() {
  while (true) {
    auto it = completed_.find(next_release_);
    if (it == completed_.end()) break;
    for (auto& payload : it->second) delivered_.push_back(std::move(payload));
    completed_.erase(it);
    blocks_.erase(next_release_);
    ++next_release_;
  }
}

std::vector<util::Bytes> ReliableMulticastReceiver::take_delivered() {
  std::vector<util::Bytes> out(delivered_.begin(), delivered_.end());
  delivered_.clear();
  return out;
}

bool ReliableMulticastReceiver::complete_through(
    std::uint32_t last_block) const {
  return next_release_ > last_block;
}

}  // namespace rapidware::reliable
