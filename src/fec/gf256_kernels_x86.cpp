// x86 shuffle backends: SSSE3 pshufb (16 B/step) and AVX2 vpshufb
// (32 B/step) over the split-nibble tables. Compiled with function-level
// target attributes rather than per-file -m flags so the whole library
// builds with the default architecture and the dispatcher
// (gf256_kernels.cpp) decides at runtime what may execute; callers must
// never reach these without the matching CPUID bit.
#include "fec/gf256_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

namespace rapidware::fec::gf::detail {
namespace {

#define RW_TARGET_SSSE3 __attribute__((target("ssse3")))
#define RW_TARGET_AVX2 __attribute__((target("avx2")))

}  // namespace

// ---------------------------------------------------------------------------
// SSSE3

RW_TARGET_SSSE3
void xor_add_ssse3(util::MutableByteSpan dst, util::ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst.data() + i));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src.data() + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst.data() + i),
                     _mm_xor_si128(d, s));
  }
  xor_add_u64(dst.data() + i, src.data() + i, n - i);
}

RW_TARGET_SSSE3
void mul_add_ssse3(util::MutableByteSpan dst, util::ByteSpan src,
                   std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) return;
  if (c == 1) {
    xor_add_ssse3(dst, src);
    return;
  }
  const auto& nt = nibble_tables();
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src.data() + i));
    const __m128i lo_prod = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i hi_prod =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst.data() + i));
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst.data() + i),
        _mm_xor_si128(d, _mm_xor_si128(lo_prod, hi_prod)));
  }
  mul_add_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                      nt.hi[c]);
}

RW_TARGET_SSSE3
void mul_assign_ssse3(util::MutableByteSpan dst, util::ByteSpan src,
                      std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) {
    std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst.data(), src.data(), n);
    return;
  }
  const auto& nt = nibble_tables();
  const __m128i lo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]));
  const __m128i hi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src.data() + i));
    const __m128i lo_prod = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i hi_prod =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst.data() + i),
                     _mm_xor_si128(lo_prod, hi_prod));
  }
  mul_assign_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                         nt.hi[c]);
}

// ---------------------------------------------------------------------------
// AVX2

RW_TARGET_AVX2
void xor_add_avx2(util::MutableByteSpan dst, util::ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst.data() + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(d, s));
  }
  xor_add_u64(dst.data() + i, src.data() + i, n - i);
}

RW_TARGET_AVX2
void mul_add_avx2(util::MutableByteSpan dst, util::ByteSpan src,
                  std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) return;
  if (c == 1) {
    xor_add_avx2(dst, src);
    return;
  }
  const auto& nt = nibble_tables();
  // vpshufb shuffles within each 128-bit lane, so broadcasting the 16-byte
  // nibble tables into both lanes gives correct per-byte products.
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    const __m256i lo_prod = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i hi_prod = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst.data() + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst.data() + i),
        _mm256_xor_si256(d, _mm256_xor_si256(lo_prod, hi_prod)));
  }
  mul_add_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                      nt.hi[c]);
}

RW_TARGET_AVX2
void mul_assign_avx2(util::MutableByteSpan dst, util::ByteSpan src,
                     std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) {
    std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst.data(), src.data(), n);
    return;
  }
  const auto& nt = nibble_tables();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    const __m256i lo_prod = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i hi_prod = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(lo_prod, hi_prod));
  }
  mul_assign_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                         nt.hi[c]);
}

}  // namespace rapidware::fec::gf::detail

#endif  // x86
