// Block packet interleaver.
//
// Block erasure codes recover at most n-k losses per group, so a burst of
// losses (common on wireless links — the Gilbert-Elliott bad state) can
// overwhelm a group even when the average loss rate is low. Interleaving
// transmits packets from `depth` consecutive groups column-first, spreading
// a burst across groups. The de-interleaver restores order. Both add
// latency proportional to rows x depth, the classic FEC trade-off.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bytes.h"

namespace rapidware::fec {

/// Collects rows x depth packets (row-major arrival), releases them
/// column-major. flush() releases a partial block in column order too.
class BlockInterleaver {
 public:
  BlockInterleaver(std::size_t rows, std::size_t depth);

  std::vector<util::Bytes> add(util::ByteSpan packet);
  std::vector<util::Bytes> flush();

 private:
  std::vector<util::Bytes> release();

  std::size_t rows_, depth_;
  std::vector<util::Bytes> block_;  // row-major arrival order
};

/// Inverse permutation: collects column-major, releases row-major. Must be
/// configured with the same (rows, depth). A short final block (from
/// flush()) is detected by the caller passing its size via flush().
class BlockDeinterleaver {
 public:
  BlockDeinterleaver(std::size_t rows, std::size_t depth);

  std::vector<util::Bytes> add(util::ByteSpan packet);
  std::vector<util::Bytes> flush();

 private:
  std::vector<util::Bytes> release(std::size_t count);

  std::size_t rows_, depth_;
  std::vector<util::Bytes> block_;
};

}  // namespace rapidware::fec
