// Unequal error protection (UEP) policy.
//
// The paper notes (Section 3) that a video FEC filter may place "more
// redundancy in I frames than in B frames" [24]. This policy maps a media
// frame class to an (n, k) code choice, so the UEP FEC filter can run one
// GroupEncoder per protection class.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>

namespace rapidware::fec {

/// Media frame classes, mirroring MPEG-style GOP structure.
enum class FrameClass : std::uint8_t {
  kKey = 0,       // I frames: loss stalls the whole GOP
  kPredicted = 1, // P frames: loss propagates forward
  kBidirectional = 2,  // B frames: loss is self-contained
  kAudio = 3,
  kOther = 4,
};

struct CodeParams {
  std::size_t n = 0;
  std::size_t k = 0;

  double overhead() const {
    return static_cast<double>(n) / static_cast<double>(k);
  }
  bool operator==(const CodeParams&) const = default;
};

class UepPolicy {
 public:
  /// Default policy: heavy protection for key frames, moderate for
  /// predicted, none (k = n) for bidirectional.
  static UepPolicy standard();

  /// Uniform protection for every class (the non-UEP baseline).
  static UepPolicy uniform(CodeParams params);

  void set(FrameClass cls, CodeParams params);
  CodeParams lookup(FrameClass cls) const;

  /// Average bandwidth overhead given a frame-class mix (fractions summing
  /// to ~1); used by the UEP ablation bench.
  double expected_overhead(const std::map<FrameClass, double>& mix) const;

 private:
  std::map<FrameClass, CodeParams> table_;
};

}  // namespace rapidware::fec
