// AArch64 NEON backend: tbl (vqtbl1q_u8) over the split-nibble tables,
// 16 bytes per step. NEON is baseline on AArch64, so no target attribute or
// CPUID check is needed — the dispatcher offers this backend whenever the
// binary is an AArch64 build.
#include "fec/gf256_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstring>

namespace rapidware::fec::gf::detail {

void xor_add_neon(util::MutableByteSpan dst, util::ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t d = vld1q_u8(dst.data() + i);
    const uint8x16_t s = vld1q_u8(src.data() + i);
    vst1q_u8(dst.data() + i, veorq_u8(d, s));
  }
  xor_add_u64(dst.data() + i, src.data() + i, n - i);
}

void mul_add_neon(util::MutableByteSpan dst, util::ByteSpan src,
                  std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) return;
  if (c == 1) {
    xor_add_neon(dst, src);
    return;
  }
  const auto& nt = nibble_tables();
  const uint8x16_t lo = vld1q_u8(nt.lo[c]);
  const uint8x16_t hi = vld1q_u8(nt.hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src.data() + i);
    const uint8x16_t lo_prod = vqtbl1q_u8(lo, vandq_u8(s, mask));
    const uint8x16_t hi_prod = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    const uint8x16_t d = vld1q_u8(dst.data() + i);
    vst1q_u8(dst.data() + i, veorq_u8(d, veorq_u8(lo_prod, hi_prod)));
  }
  mul_add_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                      nt.hi[c]);
}

void mul_assign_neon(util::MutableByteSpan dst, util::ByteSpan src,
                     std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) {
    std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst.data(), src.data(), n);
    return;
  }
  const auto& nt = nibble_tables();
  const uint8x16_t lo = vld1q_u8(nt.lo[c]);
  const uint8x16_t hi = vld1q_u8(nt.hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src.data() + i);
    const uint8x16_t lo_prod = vqtbl1q_u8(lo, vandq_u8(s, mask));
    const uint8x16_t hi_prod = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    vst1q_u8(dst.data() + i, veorq_u8(lo_prod, hi_prod));
  }
  mul_assign_nibble_tail(dst.data() + i, src.data() + i, n - i, nt.lo[c],
                         nt.hi[c]);
}

}  // namespace rapidware::fec::gf::detail

#endif  // __aarch64__
