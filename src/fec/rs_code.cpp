#include "fec/rs_code.h"

namespace rapidware::fec {
namespace detail {

std::size_t checked_symbol_length(const std::vector<util::Bytes>& symbols) {
  if (symbols.empty()) {
    throw CodingError("erasure code: need at least one symbol");
  }
  const std::size_t len = symbols.front().size();
  for (const auto& s : symbols) {
    if (s.size() != len) {
      throw CodingError("erasure code: symbols must share one length");
    }
  }
  return len;
}

}  // namespace detail

using detail::checked_symbol_length;

ReedSolomonCode::ReedSolomonCode(std::size_t n, std::size_t k)
    : n_(n), k_(k), generator_(1, 1) {
  if (k == 0 || k > n || n >= gf::kFieldSize) {
    throw CodingError("ReedSolomonCode: need 0 < k <= n < 256");
  }
  // Systematic generator: V * inverse(V_top). Any k rows remain linearly
  // independent because row operations on columns preserve the Vandermonde
  // submatrix-invertibility property.
  const Matrix v = Matrix::vandermonde(n, k);
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) top[i] = i;
  generator_ = v.multiply(v.select_rows(top).inverted());
}

std::vector<util::Bytes> ReedSolomonCode::encode(
    const std::vector<util::Bytes>& source) const {
  if (source.size() != k_) {
    throw CodingError("ReedSolomonCode::encode: expected k source symbols");
  }
  const std::size_t len = checked_symbol_length(source);

  // Source-major order: each source symbol streams through every parity
  // accumulator while it is hot in cache, instead of re-reading all k
  // source symbols once per parity row.
  std::vector<util::Bytes> parity(parity_count(), util::Bytes(len, 0));
  for (std::size_t j = 0; j < k_; ++j) {
    const util::Bytes& src = source[j];
    for (std::size_t p = 0; p < parity.size(); ++p) {
      gf::mul_add(parity[p], src, generator_.at(k_ + p, j));
    }
  }
  return parity;
}

util::Bytes ReedSolomonCode::encode_one(
    const std::vector<util::Bytes>& source, std::size_t position) const {
  if (source.size() != k_) {
    throw CodingError("ReedSolomonCode::encode_one: expected k source symbols");
  }
  if (position >= n_) {
    throw CodingError("ReedSolomonCode::encode_one: position out of range");
  }
  const std::size_t len = checked_symbol_length(source);
  if (position < k_) return source[position];  // systematic prefix
  util::Bytes out(len, 0);
  for (std::size_t j = 0; j < k_; ++j) {
    gf::mul_add(out, source[j], generator_.at(position, j));
  }
  return out;
}

std::vector<util::Bytes> ReedSolomonCode::decode(
    const std::vector<std::optional<util::Bytes>>& received) const {
  if (received.size() != n_) {
    throw CodingError("ReedSolomonCode::decode: expected n positions");
  }
  // Fast path: all k data symbols present.
  bool all_data = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!received[i]) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    std::vector<util::Bytes> out;
    out.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) out.push_back(*received[i]);
    return out;
  }

  // Choose any k received positions (prefer data symbols: the identity rows
  // make the decode matrix sparser).
  std::vector<std::size_t> chosen;
  chosen.reserve(k_);
  for (std::size_t i = 0; i < n_ && chosen.size() < k_; ++i) {
    if (received[i]) chosen.push_back(i);
  }
  if (chosen.size() < k_) {
    throw CodingError("ReedSolomonCode::decode: fewer than k symbols");
  }

  std::vector<util::Bytes> symbols;
  symbols.reserve(k_);
  for (const std::size_t i : chosen) symbols.push_back(*received[i]);
  const std::size_t len = checked_symbol_length(symbols);

  const Matrix decode = generator_.select_rows(chosen).inverted();

  std::vector<util::Bytes> out(k_, util::Bytes(len, 0));
  // Arrived positions ARE the source symbols (systematic code); only the
  // rest are synthesized. Symbol-major order for the same cache-reuse
  // reason as encode: one pass of symbols[j] feeds every missing row.
  for (std::size_t i = 0; i < k_; ++i) {
    if (received[i]) out[i] = *received[i];
  }
  for (std::size_t j = 0; j < k_; ++j) {
    const util::Bytes& sym = symbols[j];
    for (std::size_t i = 0; i < k_; ++i) {
      if (received[i]) continue;
      gf::mul_add(out[i], sym, decode.at(i, j));
    }
  }
  return out;
}

std::vector<util::Bytes> ReedSolomonCode::decode(
    std::vector<std::optional<util::Bytes>>&& received) const {
  if (received.size() == n_) {
    bool all_data = true;
    for (std::size_t i = 0; i < k_; ++i) {
      if (!received[i]) {
        all_data = false;
        break;
      }
    }
    if (all_data) {
      std::vector<util::Bytes> out;
      out.reserve(k_);
      for (std::size_t i = 0; i < k_; ++i) {
        out.push_back(std::move(*received[i]));
      }
      return out;
    }
  }
  // Recovery (and validation) path: the lvalue overload's linear algebra
  // dominates any copy cost.
  return decode(static_cast<const std::vector<std::optional<util::Bytes>>&>(
      received));
}

XorParityCode::XorParityCode(std::size_t k) : k_(k) {
  if (k == 0) throw CodingError("XorParityCode: k must be positive");
}

util::Bytes XorParityCode::encode(
    const std::vector<util::Bytes>& source) const {
  if (source.size() != k_) {
    throw CodingError("XorParityCode::encode: expected k source symbols");
  }
  checked_symbol_length(source);
  // Word-wide XOR kernel instead of a byte loop; parity starts as a copy of
  // the first symbol so one accumulation pass is saved.
  util::Bytes parity = source.front();
  for (std::size_t i = 1; i < source.size(); ++i) {
    gf::xor_add(parity, source[i]);
  }
  return parity;
}

std::vector<util::Bytes> XorParityCode::decode(
    const std::vector<std::optional<util::Bytes>>& received) const {
  if (received.size() != n()) {
    throw CodingError("XorParityCode::decode: expected n positions");
  }
  std::size_t missing = k_;  // sentinel: none missing
  std::size_t missing_count = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!received[i]) {
      missing = i;
      ++missing_count;
    }
  }
  std::vector<util::Bytes> out;
  out.reserve(k_);
  if (missing_count == 0) {
    for (std::size_t i = 0; i < k_; ++i) out.push_back(*received[i]);
    return out;
  }
  if (missing_count > 1 || !received[k_]) {
    // Unrecoverable: return only what arrived (empty slots stay empty).
    for (std::size_t i = 0; i < k_; ++i) {
      out.push_back(received[i] ? *received[i] : util::Bytes{});
    }
    return out;
  }
  util::Bytes rebuilt = *received[k_];
  for (std::size_t i = 0; i < k_; ++i) {
    if (i == missing) continue;
    if (received[i]->size() != rebuilt.size()) {
      throw CodingError("XorParityCode::decode: symbols must share one length");
    }
    gf::xor_add(rebuilt, *received[i]);
  }
  for (std::size_t i = 0; i < k_; ++i) {
    out.push_back(i == missing ? rebuilt : *received[i]);
  }
  return out;
}

}  // namespace rapidware::fec
