// FEC group packetization — the state machines inside the paper's
// FEC Encoder / FEC Decoder components (Section 5, Figure 6).
//
// The encoder collects k source packets into a group; when the group fills
// (or is flushed), encoding routines produce n-k parity packets and all n
// packets are emitted, each prefixed with a group header:
//
//     u32 group_id | u8 index | u8 k | u8 n | u16 symbol_len | body
//
// Source packets travel unpadded (systematic code); the RS symbol for
// packet i is [u16 payload_len | payload | zero padding to symbol_len], so
// the decoder can recover exact payload boundaries for rebuilt packets.
//
// The decoder buffers per-group state, reconstructs as soon as ANY k of the
// n symbols arrive, and releases payloads in order. Incomplete groups are
// released (data packets only, in index order) once the stream moves
// `window` groups past them — bounding latency, which is why the paper uses
// small groups "so as to minimize jitter".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fec/rs_code.h"
#include "util/bytes.h"
#include "util/serial.h"

namespace rapidware::fec {

/// Marks FEC wire packets, so a decoder can recognize (and pass through)
/// packets that never went through an encoder — the demand-driven scenario
/// where the FEC encoder is inserted and removed while the stream runs.
inline constexpr std::uint16_t kFecMagic = 0x4346;  // "FC"

/// Wire header of every FEC packet.
struct GroupHeader {
  std::uint32_t group_id = 0;
  std::uint8_t index = 0;  // 0..k-1 data, k..n-1 parity
  std::uint8_t k = 0;
  std::uint8_t n = 0;
  std::uint16_t symbol_len = 0;  // length of the RS symbol for this group

  static constexpr std::size_t kWireSize = 2 + 4 + 1 + 1 + 1 + 2;

  void encode_to(util::Writer& w) const;
  static GroupHeader decode_from(util::Reader& r);

  bool is_parity() const noexcept { return index >= k; }
};

/// Cheap check whether a wire packet claims to be FEC-framed.
bool looks_like_fec_packet(util::ByteSpan wire);

/// Encoder side. Not thread-safe; owned by a single filter thread.
class GroupEncoder {
 public:
  GroupEncoder(std::size_t n, std::size_t k);

  std::size_t n() const noexcept { return n_; }
  std::size_t k() const noexcept { return k_; }

  /// Adds one source packet. Returns the wire packets to transmit: empty
  /// until the group fills, then all n packets of the completed group.
  std::vector<util::Bytes> add(util::ByteSpan payload);

  /// Encodes and returns any partially filled group as a short (m + n - k,
  /// m) group so the tail of a stream keeps its parity protection.
  std::vector<util::Bytes> flush();

  std::uint64_t groups_emitted() const noexcept { return groups_emitted_; }

  /// Packets buffered toward the current group (0 right after a group
  /// closes — the safe moment to swap code parameters).
  std::size_t held_count() const noexcept { return held_.size(); }

  /// Overrides the id the next group will carry. Lets several encoders
  /// (e.g. one per UEP frame class) share one id sequence so a single
  /// decoder preserves stream order.
  void set_next_group_id(std::uint32_t id) noexcept { next_group_id_ = id; }

 private:
  std::vector<util::Bytes> encode_group();

  std::size_t n_, k_;
  std::uint32_t next_group_id_ = 0;
  std::vector<util::Bytes> held_;  // raw payloads of the current group
  std::uint64_t groups_emitted_ = 0;
};

/// Decoder-side statistics, the raw material for Figure 7.
struct DecoderStats {
  std::uint64_t packets_seen = 0;       // wire packets that arrived
  std::uint64_t duplicates = 0;         // same (group, index) twice
  std::uint64_t stale = 0;              // packet for an already-released group
  std::uint64_t data_received = 0;      // source packets that arrived raw
  std::uint64_t data_recovered = 0;     // source packets rebuilt from parity
  std::uint64_t data_lost = 0;          // source packets never delivered
  std::uint64_t groups_complete = 0;    // groups decoded with >= k symbols
  std::uint64_t groups_incomplete = 0;  // groups released short
  std::uint64_t restarts = 0;           // group-id sequence restarts seen
};

/// Decoder side. Not thread-safe; owned by a single filter thread.
class GroupDecoder {
 public:
  /// `window`: how many newer groups may open before an incomplete group is
  /// force-released. A packet whose group id lies more than
  /// `restart_threshold` below the release cursor signals a *sequence
  /// restart* (a fresh encoder was spliced into the stream, e.g. by a
  /// demand-driven FEC responder); the decoder flushes and resyncs instead
  /// of discarding the new stream as stale. A below-cursor packet for
  /// (group 0, symbol 0) is treated as a restart regardless of distance:
  /// it is the first thing every fresh encoder emits and the in-order,
  /// duplicate-free transports cannot produce it late, so it disambiguates
  /// restarts that follow a short-lived (< restart_threshold groups)
  /// predecessor sequence.
  explicit GroupDecoder(std::size_t window = 2,
                        std::uint32_t restart_threshold = 64);

  /// Consumes one wire packet; returns source payloads now releasable, in
  /// stream order (may span several groups). Corrupt packets throw
  /// util::SerialError / CodingError.
  std::vector<util::Bytes> add(util::ByteSpan wire_packet);

  /// Releases everything still pending (end of stream).
  std::vector<util::Bytes> flush();

  const DecoderStats& stats() const noexcept { return stats_; }

 private:
  struct Group {
    std::uint8_t k = 0;
    std::uint8_t n = 0;
    std::uint16_t symbol_len = 0;
    std::size_t received = 0;
    std::vector<std::optional<util::Bytes>> symbols;  // wire bodies by index
  };

  /// Appends releasable groups (in id order) to `out`.
  void release_ready(std::vector<util::Bytes>& out);
  void release_group(std::uint32_t id, Group& group,
                     std::vector<util::Bytes>& out);

  std::size_t window_;
  std::uint32_t restart_threshold_;
  std::map<std::uint32_t, Group> groups_;
  std::uint32_t next_release_ = 0;  // all ids below this are released
  std::uint32_t newest_seen_ = 0;
  bool saw_any_ = false;
  DecoderStats stats_;
};

/// Builds the RS symbol for a source payload: u16 length prefix + payload +
/// zero padding. Exposed for tests.
util::Bytes make_symbol(util::ByteSpan payload, std::size_t symbol_len);

/// Inverse of make_symbol; throws CodingError on a corrupt length prefix.
util::Bytes parse_symbol(util::ByteSpan symbol);

}  // namespace rapidware::fec
