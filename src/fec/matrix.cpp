#include "fec/matrix.h"

namespace rapidware::fec {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::multiply: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint8_t a = at(i, j);
      if (a == 0) continue;
      for (std::size_t k = 0; k < other.cols_; ++k) {
        out.at(i, k) = gf::add(out.at(i, k), gf::mul(a, other.at(j, k)));
      }
    }
  }
  return out;
}

Matrix Matrix::inverted() const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::inverted: not square");
  const std::size_t n = rows_;
  Matrix a(*this);
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) throw SingularMatrix("Matrix::inverted: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t scale = gf::inverse(a.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      a.at(col, j) = gf::mul(a.at(col, j), scale);
      inv.at(col, j) = gf::mul(inv.at(col, j), scale);
    }
    // Eliminate the column elsewhere.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = a.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a.at(r, j) = gf::add(a.at(r, j), gf::mul(factor, a.at(col, j)));
        inv.at(r, j) = gf::add(inv.at(r, j), gf::mul(factor, inv.at(col, j)));
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: bad row index");
    }
    for (std::size_t j = 0; j < cols_; ++j) out.at(i, j) = at(indices[i], j);
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1;
  return out;
}

Matrix Matrix::vandermonde(std::size_t n, std::size_t k) {
  if (n >= gf::kFieldSize) {
    throw std::invalid_argument("Matrix::vandermonde: n must be < 256");
  }
  Matrix out(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::uint8_t>(i + 1);
    for (std::size_t j = 0; j < k; ++j) {
      out.at(i, j) = gf::pow(x, static_cast<unsigned>(j));
    }
  }
  return out;
}

}  // namespace rapidware::fec
