#include "fec/interleaver.h"

#include <stdexcept>

namespace rapidware::fec {

BlockInterleaver::BlockInterleaver(std::size_t rows, std::size_t depth)
    : rows_(rows), depth_(depth) {
  if (rows == 0 || depth == 0) {
    throw std::invalid_argument("BlockInterleaver: rows and depth must be > 0");
  }
  block_.reserve(rows * depth);
}

std::vector<util::Bytes> BlockInterleaver::add(util::ByteSpan packet) {
  block_.emplace_back(packet.begin(), packet.end());
  if (block_.size() < rows_ * depth_) return {};
  return release();
}

std::vector<util::Bytes> BlockInterleaver::flush() {
  if (block_.empty()) return {};
  return release();
}

std::vector<util::Bytes> BlockInterleaver::release() {
  // Packet (r, c) arrived at index r * depth + c; emit column-first. A
  // partial block keeps the same column-major rule over the filled prefix.
  std::vector<util::Bytes> out;
  out.reserve(block_.size());
  for (std::size_t c = 0; c < depth_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t idx = r * depth_ + c;
      if (idx < block_.size()) out.push_back(std::move(block_[idx]));
    }
  }
  block_.clear();
  return out;
}

BlockDeinterleaver::BlockDeinterleaver(std::size_t rows, std::size_t depth)
    : rows_(rows), depth_(depth) {
  if (rows == 0 || depth == 0) {
    throw std::invalid_argument(
        "BlockDeinterleaver: rows and depth must be > 0");
  }
  block_.reserve(rows * depth);
}

std::vector<util::Bytes> BlockDeinterleaver::add(util::ByteSpan packet) {
  block_.emplace_back(packet.begin(), packet.end());
  if (block_.size() < rows_ * depth_) return {};
  return release(block_.size());
}

std::vector<util::Bytes> BlockDeinterleaver::flush() {
  if (block_.empty()) return {};
  return release(block_.size());
}

std::vector<util::Bytes> BlockDeinterleaver::release(std::size_t count) {
  // Arrival index a corresponds to original (r, c) where packets were sent
  // column-major over the filled prefix of the block.
  std::vector<util::Bytes> out(count);
  std::size_t a = 0;
  for (std::size_t c = 0; c < depth_ && a < count; ++c) {
    for (std::size_t r = 0; r < rows_ && a < count; ++r) {
      const std::size_t idx = r * depth_ + c;
      if (idx < count) out[idx] = std::move(block_[a++]);
    }
  }
  block_.clear();
  return out;
}

}  // namespace rapidware::fec
