// Dense matrices over GF(2^8) with Gauss-Jordan inversion — the linear
// algebra underneath the Vandermonde-based Reed-Solomon erasure code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fec/gf256.h"

namespace rapidware::fec {

/// Thrown when a decode matrix turns out singular (cannot happen for valid
/// Vandermonde submatrices; guards against corrupted indices).
class SingularMatrix : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Row r as a span (length cols()).
  util::ByteSpan row(std::size_t r) const {
    return util::ByteSpan(data_.data() + r * cols_, cols_);
  }

  Matrix multiply(const Matrix& other) const;

  /// In-place Gauss-Jordan inverse; must be square. Throws SingularMatrix.
  Matrix inverted() const;

  /// Returns a new matrix made of the given rows of this one.
  Matrix select_rows(const std::vector<std::size_t>& indices) const;

  static Matrix identity(std::size_t n);

  /// n x k Vandermonde matrix V[i][j] = (i+1)^j over GF(2^8) (row i = 0 uses
  /// element 1, ...). Any k rows are linearly independent for n <= 255.
  static Matrix vandermonde(std::size_t n, std::size_t k);

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace rapidware::fec
