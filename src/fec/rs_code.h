// Systematic (n, k) Reed-Solomon erasure code over GF(2^8), built from a
// Vandermonde generator matrix transformed so its top k x k block is the
// identity (Rizzo's construction, the paper's reference [20]).
//
//   * encode: k equal-length source symbols -> n - k parity symbols; the
//     first k codeword positions are the source symbols themselves.
//   * decode: ANY k of the n symbols reconstruct the k source symbols.
//
// A "symbol" here is a whole packet (a byte vector); all symbols in one
// group must share a length.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fec/matrix.h"
#include "util/bytes.h"

namespace rapidware::fec {

/// Erasure-coding failures (wrong counts, mismatched lengths).
class CodingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
/// Shared symbol validation: returns the common length of `symbols`.
/// Throws CodingError when the vector is empty or lengths differ (an empty
/// vector used to dereference symbols.front() — UB). Exposed here so tests
/// can pin the empty-input contract directly.
std::size_t checked_symbol_length(const std::vector<util::Bytes>& symbols);
}  // namespace detail

class ReedSolomonCode {
 public:
  /// Requires 0 < k <= n < 256.
  ReedSolomonCode(std::size_t n, std::size_t k);

  std::size_t n() const noexcept { return n_; }
  std::size_t k() const noexcept { return k_; }
  std::size_t parity_count() const noexcept { return n_ - k_; }

  /// Bandwidth expansion factor n/k.
  double overhead() const noexcept {
    return static_cast<double>(n_) / static_cast<double>(k_);
  }

  /// Computes the n-k parity symbols for k equal-length source symbols.
  std::vector<util::Bytes> encode(
      const std::vector<util::Bytes>& source) const;

  /// Computes a single codeword symbol (position 0..n-1). Positions < k
  /// return the source symbol itself; higher positions synthesize just one
  /// parity symbol — what incremental repair (reliable multicast) needs.
  util::Bytes encode_one(const std::vector<util::Bytes>& source,
                         std::size_t position) const;

  /// Reconstructs the k source symbols from any k received codeword
  /// symbols. `received[i]` is codeword position i (0..n-1) or nullopt if
  /// lost. Throws CodingError if fewer than k symbols are present.
  std::vector<util::Bytes> decode(
      const std::vector<std::optional<util::Bytes>>& received) const;

  /// Rvalue overload: when all k data symbols arrived (the common case on a
  /// healthy link) the symbols are moved out instead of copied.
  std::vector<util::Bytes> decode(
      std::vector<std::optional<util::Bytes>>&& received) const;

  /// True if `received_count` symbols suffice (i.e. >= k).
  bool recoverable(std::size_t received_count) const noexcept {
    return received_count >= k_;
  }

 private:
  std::size_t n_, k_;
  Matrix generator_;  // n x k, top k x k block == identity
};

/// Single-parity XOR code: (k+1, k). The baseline the FEC literature
/// compares against; recovers exactly one lost symbol per group.
class XorParityCode {
 public:
  explicit XorParityCode(std::size_t k);

  std::size_t n() const noexcept { return k_ + 1; }
  std::size_t k() const noexcept { return k_; }

  util::Bytes encode(const std::vector<util::Bytes>& source) const;

  /// Recovers the single missing symbol, if exactly one is missing and the
  /// parity is present; otherwise returns only what was received.
  std::vector<util::Bytes> decode(
      const std::vector<std::optional<util::Bytes>>& received) const;

 private:
  std::size_t k_;
};

}  // namespace rapidware::fec
