#include "fec/uep.h"

namespace rapidware::fec {

UepPolicy UepPolicy::standard() {
  UepPolicy p;
  p.set(FrameClass::kKey, {8, 4});            // 2x redundancy
  p.set(FrameClass::kPredicted, {6, 4});      // 1.5x
  p.set(FrameClass::kBidirectional, {4, 4});  // no parity
  p.set(FrameClass::kAudio, {6, 4});
  p.set(FrameClass::kOther, {6, 4});
  return p;
}

UepPolicy UepPolicy::uniform(CodeParams params) {
  UepPolicy p;
  for (auto cls :
       {FrameClass::kKey, FrameClass::kPredicted, FrameClass::kBidirectional,
        FrameClass::kAudio, FrameClass::kOther}) {
    p.set(cls, params);
  }
  return p;
}

void UepPolicy::set(FrameClass cls, CodeParams params) {
  if (params.k == 0 || params.k > params.n) {
    throw std::invalid_argument("UepPolicy::set: need 0 < k <= n");
  }
  table_[cls] = params;
}

CodeParams UepPolicy::lookup(FrameClass cls) const {
  if (auto it = table_.find(cls); it != table_.end()) return it->second;
  if (auto it = table_.find(FrameClass::kOther); it != table_.end()) {
    return it->second;
  }
  throw std::out_of_range("UepPolicy::lookup: class not configured");
}

double UepPolicy::expected_overhead(
    const std::map<FrameClass, double>& mix) const {
  double total = 0.0, weight = 0.0;
  for (const auto& [cls, fraction] : mix) {
    total += fraction * lookup(cls).overhead();
    weight += fraction;
  }
  return weight > 0 ? total / weight : 0.0;
}

}  // namespace rapidware::fec
