// Kernel table construction, the portable backends, and runtime dispatch.
// SIMD backends live in gf256_kernels_x86.cpp / gf256_kernels_neon.cpp.
#include "fec/gf256_kernels.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fec/gf256.h"
#include "obs/metrics.h"

namespace rapidware::fec::gf {
namespace detail {

namespace {
NibbleTables build_nibble_tables() {
  NibbleTables t{};
  for (int c = 0; c < 256; ++c) {
    for (int x = 0; x < 16; ++x) {
      t.lo[c][x] = mul(static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(x));
      t.hi[c][x] = mul(static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(x << 4));
    }
  }
  return t;
}
}  // namespace

const NibbleTables& nibble_tables() {
  static const NibbleTables t = build_nibble_tables();
  return t;
}

void mul_add_nibble_tail(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t n, const std::uint8_t* lo,
                         const std::uint8_t* hi) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= static_cast<std::uint8_t>(lo[src[i] & 0x0f] ^ hi[src[i] >> 4]);
  }
}

void mul_assign_nibble_tail(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n, const std::uint8_t* lo,
                            const std::uint8_t* hi) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(lo[src[i] & 0x0f] ^ hi[src[i] >> 4]);
  }
}

void xor_add_u64(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

namespace {

// ---------------------------------------------------------------------------
// Reference backend: the original byte-at-a-time log/exp loops. Stays the
// ground truth every other backend is property-tested against.

void mul_add_reference(util::MutableByteSpan dst, util::ByteSpan src,
                       std::uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const std::size_t logc = t.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (src[i] != 0) dst[i] ^= t.exp[logc + t.log[src[i]]];
  }
}

void mul_assign_reference(util::MutableByteSpan dst, util::ByteSpan src,
                          std::uint8_t c) {
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    return;
  }
  const auto& t = tables();
  const std::size_t logc = t.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = src[i] == 0 ? 0 : t.exp[logc + t.log[src[i]]];
  }
}

void xor_add_reference(util::MutableByteSpan dst, util::ByteSpan src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

// ---------------------------------------------------------------------------
// Portable 64-bit backend: a precomputed 256x256 product table (64 KiB,
// built lazily; one 256-byte row live per call) and a branch-free inner
// loop that gathers eight row lookups into one 64-bit word, so dst is
// read-modified-written a word at a time. Beats the log/exp reference by
// avoiding the dependent second lookup and the per-byte zero test, and
// beats per-byte stores by turning eight RMWs into one. Measured ~2.5-3x
// the reference on x86-64 and the best non-shuffle option we found
// (8-lane SWAR shift-and-add came out SLOWER than the reference: ~6 ALU
// ops/byte loses to two well-predicted L1 lookups).

struct MulTable {
  std::uint8_t row[256][256];  // row[c][x] = c * x
};

const MulTable& mul_table() {
  static const MulTable t = [] {
    MulTable m{};
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 256; ++x) {
        m.row[c][x] = mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(x));
      }
    }
    return m;
  }();
  return t;
}

void mul_add_portable64(util::MutableByteSpan dst, util::ByteSpan src,
                        std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) return;
  if (c == 1) {
    xor_add_u64(dst.data(), src.data(), n);
    return;
  }
  const std::uint8_t* const row = mul_table().row[c];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d;
    std::memcpy(&d, dst.data() + i, 8);
    const std::uint64_t p =
        static_cast<std::uint64_t>(row[src[i]]) |
        (static_cast<std::uint64_t>(row[src[i + 1]]) << 8) |
        (static_cast<std::uint64_t>(row[src[i + 2]]) << 16) |
        (static_cast<std::uint64_t>(row[src[i + 3]]) << 24) |
        (static_cast<std::uint64_t>(row[src[i + 4]]) << 32) |
        (static_cast<std::uint64_t>(row[src[i + 5]]) << 40) |
        (static_cast<std::uint64_t>(row[src[i + 6]]) << 48) |
        (static_cast<std::uint64_t>(row[src[i + 7]]) << 56);
    d ^= p;
    std::memcpy(dst.data() + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_assign_portable64(util::MutableByteSpan dst, util::ByteSpan src,
                           std::uint8_t c) {
  const std::size_t n = dst.size();
  if (c == 0) {
    std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    std::memmove(dst.data(), src.data(), n);
    return;
  }
  const std::uint8_t* const row = mul_table().row[c];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t p =
        static_cast<std::uint64_t>(row[src[i]]) |
        (static_cast<std::uint64_t>(row[src[i + 1]]) << 8) |
        (static_cast<std::uint64_t>(row[src[i + 2]]) << 16) |
        (static_cast<std::uint64_t>(row[src[i + 3]]) << 24) |
        (static_cast<std::uint64_t>(row[src[i + 4]]) << 32) |
        (static_cast<std::uint64_t>(row[src[i + 5]]) << 40) |
        (static_cast<std::uint64_t>(row[src[i + 6]]) << 48) |
        (static_cast<std::uint64_t>(row[src[i + 7]]) << 56);
    std::memcpy(dst.data() + i, &p, 8);
  }
  for (; i < n; ++i) dst[i] = row[src[i]];
}

void xor_add_portable64(util::MutableByteSpan dst, util::ByteSpan src) {
  xor_add_u64(dst.data(), src.data(), dst.size());
}

}  // namespace
}  // namespace detail

namespace {

constexpr Kernels kReferenceKernels{
    Backend::kReference, "reference", detail::mul_add_reference,
    detail::mul_assign_reference, detail::xor_add_reference};

constexpr Kernels kPortable64Kernels{
    Backend::kPortable64, "portable64", detail::mul_add_portable64,
    detail::mul_assign_portable64, detail::xor_add_portable64};

#if defined(__x86_64__) || defined(__i386__)
constexpr Kernels kSsse3Kernels{Backend::kSsse3, "ssse3",
                                detail::mul_add_ssse3,
                                detail::mul_assign_ssse3,
                                detail::xor_add_ssse3};
constexpr Kernels kAvx2Kernels{Backend::kAvx2, "avx2", detail::mul_add_avx2,
                               detail::mul_assign_avx2, detail::xor_add_avx2};
#endif

#if defined(__aarch64__)
constexpr Kernels kNeonKernels{Backend::kNeon, "neon", detail::mul_add_neon,
                               detail::mul_assign_neon, detail::xor_add_neon};
#endif

/// The active backend. Null until the first active_kernels() call runs the
/// one-time selection below; mutable afterwards only via
/// set_active_backend (tests/benches).
std::atomic<const Kernels*> g_active{nullptr};

const Kernels* pick_default() {
  if (const char* env = std::getenv("RW_GF_BACKEND")) {
    if (const auto forced = parse_backend(env)) {
      if (const Kernels* k = kernels_for(*forced)) return k;
      std::fprintf(stderr,
                   "rapidware/fec: RW_GF_BACKEND=%s not supported on this "
                   "host; auto-selecting\n",
                   env);
    } else if (env[0] != '\0') {
      std::fprintf(stderr,
                   "rapidware/fec: unknown RW_GF_BACKEND=%s; "
                   "auto-selecting\n",
                   env);
    }
  }
  for (const Backend b :
       {Backend::kAvx2, Backend::kNeon, Backend::kSsse3,
        Backend::kPortable64}) {
    if (const Kernels* k = kernels_for(b)) return k;
  }
  return &kReferenceKernels;
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kReference:
      return "reference";
    case Backend::kPortable64:
      return "portable64";
    case Backend::kSsse3:
      return "ssse3";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Backend> parse_backend(std::string_view name) {
  for (const Backend b :
       {Backend::kReference, Backend::kPortable64, Backend::kSsse3,
        Backend::kAvx2, Backend::kNeon}) {
    if (name == to_string(b)) return b;
  }
  return std::nullopt;
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> out;
  for (const Backend b :
       {Backend::kReference, Backend::kPortable64, Backend::kSsse3,
        Backend::kAvx2, Backend::kNeon}) {
    if (kernels_for(b) != nullptr) out.push_back(b);
  }
  return out;
}

const Kernels* kernels_for(Backend b) {
  switch (b) {
    case Backend::kReference:
      return &kReferenceKernels;
    case Backend::kPortable64:
      return &kPortable64Kernels;
    case Backend::kSsse3:
#if defined(__x86_64__) || defined(__i386__)
      if (__builtin_cpu_supports("ssse3")) return &kSsse3Kernels;
#endif
      return nullptr;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (__builtin_cpu_supports("avx2")) return &kAvx2Kernels;
#endif
      return nullptr;
    case Backend::kNeon:
#if defined(__aarch64__)
      return &kNeonKernels;
#endif
      return nullptr;
  }
  return nullptr;
}

const Kernels& active_kernels() {
  if (const Kernels* k = g_active.load(std::memory_order_acquire)) return *k;
  // Thread-safe one-time selection; also publishes the obs gauge. The gauge
  // reads g_active so a later set_active_backend() shows up in STATS.
  static const bool initialized = [] {
    g_active.store(pick_default(), std::memory_order_release);
    obs::registry().callback("fec/gf256/backend", [] {
      const Kernels* k = g_active.load(std::memory_order_relaxed);
      return static_cast<double>(static_cast<int>(k->backend));
    });
    return true;
  }();
  (void)initialized;
  return *g_active.load(std::memory_order_acquire);
}

bool set_active_backend(Backend b) {
  const Kernels* k = kernels_for(b);
  if (k == nullptr) return false;
  active_kernels();  // ensure one-time init (and the gauge) happened
  g_active.store(k, std::memory_order_release);
  return true;
}

}  // namespace rapidware::fec::gf
