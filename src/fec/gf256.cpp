#include "fec/gf256.h"

#include <cassert>

#include "fec/gf256_kernels.h"

namespace rapidware::fec::gf {
namespace detail {

namespace {
Tables build_tables() {
  Tables t{};
  std::uint16_t x = 1;
  for (int i = 0; i < kFieldSize - 1; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  // Duplicate the cycle so exp[log a + log b] needs no modulo.
  for (int i = kFieldSize - 1; i < 2 * kFieldSize; ++i) {
    t.exp[static_cast<std::size_t>(i)] =
        t.exp[static_cast<std::size_t>(i - (kFieldSize - 1))];
  }
  t.log[0] = 0;  // log(0) is undefined; callers must not use it
  return t;
}
}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

}  // namespace detail

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0 && "division by zero in GF(2^8)");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + (kFieldSize - 1) - t.log[b]];
}

std::uint8_t pow(std::uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const unsigned e = (static_cast<unsigned>(t.log[a]) * power) % (kFieldSize - 1);
  return t.exp[e];
}

std::uint8_t inverse(std::uint8_t a) {
  assert(a != 0 && "inverse of zero in GF(2^8)");
  const auto& t = detail::tables();
  return t.exp[(kFieldSize - 1) - t.log[a]];
}

void mul_add(util::MutableByteSpan dst, util::ByteSpan src, std::uint8_t c) {
  assert(dst.size() == src.size());
  active_kernels().mul_add(dst, src, c);
}

void mul_assign(util::MutableByteSpan dst, util::ByteSpan src, std::uint8_t c) {
  assert(dst.size() == src.size());
  active_kernels().mul_assign(dst, src, c);
}

void xor_add(util::MutableByteSpan dst, util::ByteSpan src) {
  assert(dst.size() == src.size());
  active_kernels().xor_add(dst, src);
}

}  // namespace rapidware::fec::gf
