// Vectorized GF(2^8) bulk-multiply kernels for the FEC hot path.
//
// `gf::mul_add` (dst ^= c*src) is the inner loop of every Reed-Solomon
// encode and decode, so it gets a kernel layer: split-nibble multiplication
// tables (lo[x & 0xf] ^ hi[x >> 4] == c*x) enable shuffle-based SIMD
// multiply — `pshufb` on x86 (SSSE3/AVX2), `tbl` on AArch64 — plus a
// branch-free 64-bit-wide portable scalar backend for everything else.
//
// The backend is selected ONCE, on first use: the fastest one this CPU
// supports (runtime CPUID dispatch), overridable with the RW_GF_BACKEND
// environment variable ("reference", "portable64", "ssse3", "avx2",
// "neon"; an unsupported request falls back to auto-selection). The
// selection is published as the obs callback gauge "fec/gf256/backend"
// (value = Backend enum id) so a live proxy's STATS dump names the kernel
// it is running. See docs/fec_kernels.md.
//
// Every backend is property-tested byte-for-byte against the reference
// scalar across all 256 coefficients and unaligned lengths/offsets
// (tests/fec_test.cpp); none requires aligned spans.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace rapidware::fec::gf {

/// Kernel implementations, ordered roughly slowest to fastest. The numeric
/// values are stable — they are what the "fec/gf256/backend" gauge reports.
enum class Backend : int {
  kReference = 0,   // byte-at-a-time log/exp lookups (the original scalar)
  kPortable64 = 1,  // branch-free product-row gather, 64-bit-wide RMW/XOR
  kSsse3 = 2,       // 16-byte pshufb split-nibble shuffle
  kAvx2 = 3,        // 32-byte vpshufb split-nibble shuffle
  kNeon = 4,        // 16-byte tbl split-nibble shuffle (AArch64)
};

/// One backend's entry points. All three take equal-sized, possibly
/// unaligned spans; dst and src must not overlap.
struct Kernels {
  Backend backend;
  const char* name;
  /// dst[i] ^= c * src[i].
  void (*mul_add)(util::MutableByteSpan dst, util::ByteSpan src,
                  std::uint8_t c);
  /// dst[i] = c * src[i].
  void (*mul_assign)(util::MutableByteSpan dst, util::ByteSpan src,
                     std::uint8_t c);
  /// dst[i] ^= src[i] — the c==1 special case, exported because plain
  /// parity codes (XorParityCode) are nothing but this loop.
  void (*xor_add)(util::MutableByteSpan dst, util::ByteSpan src);
};

/// Stable lowercase name for a backend ("avx2", ...).
const char* to_string(Backend b);

/// Inverse of to_string; nullopt for unknown names.
std::optional<Backend> parse_backend(std::string_view name);

/// Backends compiled into this binary AND runnable on this CPU, in enum
/// order. Always contains kReference and kPortable64.
std::vector<Backend> supported_backends();

/// Kernel table for one backend, or nullptr when it is not compiled in or
/// this CPU cannot run it. Lets tests and benches exercise every backend
/// explicitly without touching the global selection.
const Kernels* kernels_for(Backend b);

/// The active kernel table behind gf::mul_add / gf::mul_assign /
/// gf::xor_add. First call performs the one-time selection described in
/// the header comment; later calls are a single atomic load.
const Kernels& active_kernels();

/// Test/bench hook: forces the active backend. Returns false (selection
/// unchanged) when `b` is unsupported on this host.
bool set_active_backend(Backend b);

namespace detail {

/// Split-nibble product tables: lo[c][x] = c*x for x in 0..15 and
/// hi[c][x] = c*(x<<4), so c*b == lo[c][b & 0xf] ^ hi[c][b >> 4] by
/// linearity of GF(2^8) multiplication over XOR. 16-byte rows align with
/// one shuffle register; built once, lazily (8 KiB total).
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};
const NibbleTables& nibble_tables();

/// Branch-free scalar tails shared by the SIMD backends.
void mul_add_nibble_tail(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t n, const std::uint8_t* lo,
                         const std::uint8_t* hi);
void mul_assign_nibble_tail(std::uint8_t* dst, const std::uint8_t* src,
                            std::size_t n, const std::uint8_t* lo,
                            const std::uint8_t* hi);
void xor_add_u64(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

#if defined(__x86_64__) || defined(__i386__)
void mul_add_ssse3(util::MutableByteSpan dst, util::ByteSpan src,
                   std::uint8_t c);
void mul_assign_ssse3(util::MutableByteSpan dst, util::ByteSpan src,
                      std::uint8_t c);
void xor_add_ssse3(util::MutableByteSpan dst, util::ByteSpan src);
void mul_add_avx2(util::MutableByteSpan dst, util::ByteSpan src,
                  std::uint8_t c);
void mul_assign_avx2(util::MutableByteSpan dst, util::ByteSpan src,
                     std::uint8_t c);
void xor_add_avx2(util::MutableByteSpan dst, util::ByteSpan src);
#endif

#if defined(__aarch64__)
void mul_add_neon(util::MutableByteSpan dst, util::ByteSpan src,
                  std::uint8_t c);
void mul_assign_neon(util::MutableByteSpan dst, util::ByteSpan src,
                     std::uint8_t c);
void xor_add_neon(util::MutableByteSpan dst, util::ByteSpan src);
#endif

}  // namespace detail

}  // namespace rapidware::fec::gf
