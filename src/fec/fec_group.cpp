#include "fec/fec_group.h"

#include <algorithm>
#include <cstring>

#include "util/buffer_pool.h"
#include "util/serial.h"

namespace rapidware::fec {
namespace {

/// Generator-matrix construction inverts a k x k matrix; cache codes per
/// (n, k) so steady-state encode/decode touches no linear algebra setup.
const ReedSolomonCode& cached_code(std::size_t n, std::size_t k) {
  thread_local std::map<std::pair<std::size_t, std::size_t>, ReedSolomonCode>
      cache;
  auto it = cache.find({n, k});
  if (it == cache.end()) {
    it = cache.try_emplace({n, k}, ReedSolomonCode(n, k)).first;
  }
  return it->second;
}

}  // namespace

void GroupHeader::encode_to(util::Writer& w) const {
  w.u16(kFecMagic);
  w.u32(group_id);
  w.u8(index);
  w.u8(k);
  w.u8(n);
  w.u16(symbol_len);
}

bool looks_like_fec_packet(util::ByteSpan wire) {
  return wire.size() >= GroupHeader::kWireSize &&
         (static_cast<std::uint16_t>(wire[0]) |
          static_cast<std::uint16_t>(wire[1]) << 8) == kFecMagic;
}

GroupHeader GroupHeader::decode_from(util::Reader& r) {
  GroupHeader h;
  if (r.u16() != kFecMagic) {
    throw CodingError("GroupHeader: missing FEC magic");
  }
  h.group_id = r.u32();
  h.index = r.u8();
  h.k = r.u8();
  h.n = r.u8();
  h.symbol_len = r.u16();
  if (h.k == 0 || h.n < h.k || h.index >= h.n || h.symbol_len < 2) {
    throw CodingError("GroupHeader: invalid field values");
  }
  return h;
}

util::Bytes make_symbol(util::ByteSpan payload, std::size_t symbol_len) {
  if (payload.size() + 2 > symbol_len) {
    throw CodingError("make_symbol: payload exceeds symbol length");
  }
  util::Bytes symbol(symbol_len, 0);
  symbol[0] = static_cast<std::uint8_t>(payload.size());
  symbol[1] = static_cast<std::uint8_t>(payload.size() >> 8);
  std::copy(payload.begin(), payload.end(), symbol.begin() + 2);
  return symbol;
}

util::Bytes parse_symbol(util::ByteSpan symbol) {
  if (symbol.size() < 2) throw CodingError("parse_symbol: truncated symbol");
  const std::size_t len = static_cast<std::size_t>(symbol[0]) |
                          (static_cast<std::size_t>(symbol[1]) << 8);
  if (len + 2 > symbol.size()) {
    throw CodingError("parse_symbol: corrupt length prefix");
  }
  return util::Bytes(symbol.begin() + 2,
                     symbol.begin() + 2 + static_cast<std::ptrdiff_t>(len));
}

// ---------------------------------------------------------------------------
// GroupEncoder

GroupEncoder::GroupEncoder(std::size_t n, std::size_t k) : n_(n), k_(k) {
  if (k == 0 || k > n || n >= gf::kFieldSize) {
    throw CodingError("GroupEncoder: need 0 < k <= n < 256");
  }
}

std::vector<util::Bytes> GroupEncoder::add(util::ByteSpan payload) {
  if (payload.size() > 0xffff - 2) {
    throw CodingError("GroupEncoder: payload too large for one symbol");
  }
  // Hold a pooled copy: encode_group() releases it back, so steady-state
  // group assembly does not grow the heap.
  util::Bytes held = util::BufferPool::local().acquire(payload.size());
  if (!payload.empty()) {
    std::memcpy(held.data(), payload.data(), payload.size());
  }
  held_.push_back(std::move(held));
  if (held_.size() < k_) return {};
  return encode_group();
}

std::vector<util::Bytes> GroupEncoder::flush() {
  if (held_.empty()) return {};
  return encode_group();
}

std::vector<util::Bytes> GroupEncoder::encode_group() {
  // A partial group (flush) becomes a short (m + parity, m) code so the
  // stream tail keeps the same parity protection.
  const std::size_t m = held_.size();
  const std::size_t n = m + (n_ - k_);

  std::size_t max_payload = 0;
  for (const auto& p : held_) max_payload = std::max(max_payload, p.size());
  const auto symbol_len = static_cast<std::uint16_t>(max_payload + 2);

  std::vector<util::Bytes> symbols;
  symbols.reserve(m);
  for (const auto& p : held_) symbols.push_back(make_symbol(p, symbol_len));

  const std::vector<util::Bytes> parity = cached_code(n, m).encode(symbols);

  std::vector<util::Bytes> wire;
  wire.reserve(n);
  const std::uint32_t gid = next_group_id_++;
  for (std::size_t i = 0; i < m; ++i) {
    util::Writer w(GroupHeader::kWireSize + held_[i].size());
    GroupHeader{gid, static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(m),
                static_cast<std::uint8_t>(n), symbol_len}
        .encode_to(w);
    w.raw(held_[i]);
    wire.push_back(w.take());
  }
  for (std::size_t p = 0; p < parity.size(); ++p) {
    util::Writer w(GroupHeader::kWireSize + parity[p].size());
    GroupHeader{gid, static_cast<std::uint8_t>(m + p),
                static_cast<std::uint8_t>(m), static_cast<std::uint8_t>(n),
                symbol_len}
        .encode_to(w);
    w.raw(parity[p]);
    wire.push_back(w.take());
  }
  for (auto& p : held_) util::BufferPool::local().release(std::move(p));
  held_.clear();
  ++groups_emitted_;
  return wire;
}

// ---------------------------------------------------------------------------
// GroupDecoder

GroupDecoder::GroupDecoder(std::size_t window,
                           std::uint32_t restart_threshold)
    : window_(window), restart_threshold_(restart_threshold) {}

std::vector<util::Bytes> GroupDecoder::add(util::ByteSpan wire_packet) {
  util::Reader r(wire_packet);
  const GroupHeader h = GroupHeader::decode_from(r);
  const util::Bytes body = r.raw(r.remaining());
  ++stats_.packets_seen;

  std::vector<util::Bytes> restart_flushed;
  if (h.group_id < next_release_) {
    // A fresh encoder's very first emission is always (group 0, symbol 0),
    // and the in-process transports neither duplicate nor reorder (the
    // deinterleaver restores order), so that pair below the cursor is an
    // unambiguous splice signature even when the id distance is small —
    // without it, a short-lived predecessor sequence (cursor <= threshold)
    // would get the whole successor's head silently dropped as stale.
    const bool splice_signature = h.group_id == 0 && h.index == 0;
    if (!splice_signature &&
        next_release_ - h.group_id <= restart_threshold_) {
      ++stats_.stale;  // genuinely late packet for a released group
      return {};
    }
    // Sequence restart: a new encoder took over the stream. Release what
    // is pending (in order), then resync to the new id sequence.
    restart_flushed = flush();
    next_release_ = h.group_id;
    newest_seen_ = h.group_id;
    ++stats_.restarts;
  }

  auto [it, created] = groups_.try_emplace(h.group_id);
  Group& g = it->second;
  if (created) {
    g.k = h.k;
    g.n = h.n;
    g.symbol_len = h.symbol_len;
    g.symbols.assign(h.n, std::nullopt);
  } else if (g.k != h.k || g.n != h.n || g.symbol_len != h.symbol_len) {
    throw CodingError("GroupDecoder: inconsistent group parameters");
  }

  if (g.symbols[h.index]) {
    ++stats_.duplicates;
    return {};
  }
  if (h.is_parity()) {
    if (body.size() != g.symbol_len) {
      throw CodingError("GroupDecoder: parity body length mismatch");
    }
  } else if (body.size() + 2 > g.symbol_len) {
    throw CodingError("GroupDecoder: data body exceeds symbol length");
  }
  g.symbols[h.index] = body;
  ++g.received;

  if (!saw_any_ || h.group_id > newest_seen_) newest_seen_ = h.group_id;
  saw_any_ = true;

  std::vector<util::Bytes> out = std::move(restart_flushed);
  release_ready(out);
  return out;
}

std::vector<util::Bytes> GroupDecoder::flush() {
  std::vector<util::Bytes> out;
  for (auto& [id, group] : groups_) release_group(id, group, out);
  groups_.clear();
  if (saw_any_) next_release_ = newest_seen_ + 1;
  return out;
}

void GroupDecoder::release_ready(std::vector<util::Bytes>& out) {
  // Groups are released strictly in id order; a complete group waits for
  // older ones (order preservation at the cost of latency). A group that is
  // entirely unseen, or incomplete, is given up on once the stream has
  // moved `window` groups past it.
  while (!groups_.empty()) {
    const bool head_expired =
        newest_seen_ > next_release_ && newest_seen_ - next_release_ > window_;
    auto it = groups_.begin();
    if (it->first > next_release_) {
      // Group ids [next_release_, head) were never seen at all.
      if (!head_expired) break;
      ++next_release_;  // give up on one wholly lost group
      continue;
    }
    Group& g = it->second;
    if (g.received < g.k && !head_expired) break;
    release_group(it->first, g, out);
    groups_.erase(it);
    ++next_release_;
  }
}

void GroupDecoder::release_group(std::uint32_t id, Group& g,
                                 std::vector<util::Bytes>& out) {
  (void)id;
  if (g.received >= g.k) {
    // Rebuild: any k of n symbols suffice.
    std::vector<std::optional<util::Bytes>> symbols(g.n);
    std::size_t data_present = 0;
    for (std::size_t i = 0; i < g.n; ++i) {
      if (!g.symbols[i]) continue;
      if (i < g.k) {
        symbols[i] = make_symbol(*g.symbols[i], g.symbol_len);
        ++data_present;
      } else {
        symbols[i] = *g.symbols[i];
      }
    }
    std::vector<util::Bytes> decoded =
        cached_code(g.n, g.k).decode(std::move(symbols));
    for (auto& symbol : decoded) out.push_back(parse_symbol(symbol));
    stats_.data_received += data_present;
    stats_.data_recovered += g.k - data_present;
    ++stats_.groups_complete;
    return;
  }
  // Short release: deliver raw data packets in index order.
  std::size_t data_present = 0;
  for (std::size_t i = 0; i < g.k; ++i) {
    if (g.symbols[i]) {
      out.push_back(*g.symbols[i]);
      ++data_present;
    }
  }
  stats_.data_received += data_present;
  stats_.data_lost += g.k - data_present;
  ++stats_.groups_incomplete;
}

}  // namespace rapidware::fec
