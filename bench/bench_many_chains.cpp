// Many-chains scalability: aggregate and per-chain throughput of the
// event-driven data plane as the number of concurrent filter chains grows
// far past the thread-per-filter limit (docs/data_plane.md, "Worker
// model"). Every chain here is fully event-capable — QueuePacketSource
// head, pass-through PacketFilter, counting-sink tail — so a (workers=1,
// chains=10000) row really is 30k logical filters multiplexed onto ONE OS
// thread; thread-per-filter would need 30k threads and ~240 GB of default
// stacks for the same load.
//
// Reported per row:
//   * packets_per_sec / mbytes_per_sec — aggregate across all chains;
//   * vs_memcpy       — MB/s normalized by a same-run memcpy baseline, the
//                       machine-independent number CI gates on
//                       (tools/bench_compare.py --rwbench against
//                       bench/baselines/many_chains_baseline.json);
//   * per_chain_packets_per_sec — aggregate / chains (fair-share rate).
//
// Built-in acceptance gate (exit 1 on violation): the 10k-chain
// single-worker row must sustain at least HALF the aggregate vs_memcpy of
// the single-chain row from the same run — i.e. multiplexing 10,000
// chains costs at most 2x over running one chain flat out.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/endpoint.h"
#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "util/bytes.h"

using namespace rapidware;

namespace {

/// Shared across every chain: counts deliveries, never stores them.
class CountingPacketSink final : public core::PacketSink {
 public:
  void deliver(util::ByteSpan packet) override {
    packets_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(packet.size(), std::memory_order_relaxed);
  }

  std::uint64_t packets() const {
    return packets_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

class PassThroughPacketFilter final : public core::PacketFilter {
 public:
  using PacketFilter::PacketFilter;

 protected:
  void on_packet(util::Bytes packet) override { emit(std::move(packet)); }
};

// Ring sizing is the batching-vs-footprint tradeoff of a dense
// deployment: each hop's ring bounds how many frames one worker wakeup
// can batch (the drive's budget only helps if frames are queued). 8 KiB
// holds ~31 frames of 256 B — deep enough to amortize dispatch — at
// ~24 KiB of ring per 3-stage chain, so the 10k-chain row stays around a
// quarter GB.
constexpr std::size_t kRing = 8192;
constexpr std::size_t kPacketBytes = 256;

struct Result {
  double packets_per_sec;
  double mbytes_per_sec;
  double secs;
};

Result run_once(std::size_t workers, std::size_t chains,
                std::uint64_t packets_per_chain) {
  core::WorkerPool pool(workers);
  auto sink = std::make_shared<CountingPacketSink>();

  std::vector<std::shared_ptr<core::QueuePacketSource>> sources;
  std::vector<std::unique_ptr<core::FilterChain>> live;
  sources.reserve(chains);
  live.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    auto source = std::make_shared<core::QueuePacketSource>();
    auto chain = std::make_unique<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("rx", source, kRing),
        std::make_shared<core::PacketWriterEndpoint>("tx", sink, kRing));
    chain->host_on(pool.next());
    chain->start();
    chain->insert(std::make_shared<PassThroughPacketFilter>("pass", kRing), 0);
    sources.push_back(std::move(source));
    live.push_back(std::move(chain));
  }

  const util::Bytes packet(kPacketBytes, 0x5a);
  const std::uint64_t total = packets_per_chain * chains;
  const auto t0 = std::chrono::steady_clock::now();
  // Round-robin bursts across chains, the arrival pattern a busy proxy
  // sees: every chain stays concurrently in flight, and each worker
  // wakeup finds a small batch queued (the drive's budget loop exists for
  // exactly this), instead of paying one dispatch per lone packet.
  constexpr std::uint64_t kBurst = 64;
  for (std::uint64_t p = 0; p < packets_per_chain; p += kBurst) {
    const std::uint64_t n = std::min(kBurst, packets_per_chain - p);
    for (auto& source : sources) {
      for (std::uint64_t b = 0; b < n; ++b) source->push(packet);
    }
  }
  for (auto& source : sources) source->finish();
  while (sink->packets() < total) std::this_thread::yield();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Teardown off the clock: async begin_shutdown for all chains first, so
  // the final drives retire in parallel, then the destructors just join.
  for (auto& chain : live) chain->begin_shutdown();
  live.clear();
  pool.stop();

  Result r;
  r.packets_per_sec = static_cast<double>(total) / secs;
  r.mbytes_per_sec = static_cast<double>(sink->bytes()) / secs / 1e6;
  r.secs = secs;
  return r;
}

Result run(std::size_t workers, std::size_t chains,
           std::uint64_t packets_per_chain, int reps) {
  // Best of reps, same envelope logic as bench_chain_overhead: the fastest
  // run is the one least distorted by unrelated scheduler noise.
  Result best{};
  for (int i = 0; i < reps; ++i) {
    const Result r = run_once(workers, chains, packets_per_chain);
    if (r.packets_per_sec > best.packets_per_sec) best = r;
  }
  return best;
}

double memcpy_ref_mbps() {
  // Same normalization reference as the other data-plane benches:
  // single-thread 64 KiB memcpy, best of 5.
  constexpr std::size_t kChunk = 65536;
  constexpr int kChunks = 4096;
  util::Bytes src(kChunk, 0xaa), dst(kChunk, 0);
  volatile std::uint8_t guard = 0;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunks; ++i) {
      std::copy(src.begin(), src.end(), dst.begin());
      guard = guard + dst[kChunk - 1];
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, kChunk * static_cast<double>(kChunks) / secs / 1e6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== Many-chains scalability (event workers) ===\n\n");
  rwbench::JsonSummary json("many_chains");
  json.meta("rw_obs_enabled", RW_OBS_ENABLED != 0);
  json.meta("quick", quick);
  json.meta("hardware_threads", static_cast<unsigned long long>(hw));
  json.meta("packet_bytes", static_cast<unsigned long long>(kPacketBytes));
  json.meta("ring_bytes", static_cast<unsigned long long>(kRing));
  const double memcpy_ref = memcpy_ref_mbps();
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);

  std::printf("%8s %8s %10s %14s %12s %11s %14s\n", "workers", "chains",
              "pkts/chain", "packets/s", "MB/s", "vs_memcpy", "per-chain p/s");
  const int reps = quick ? 1 : 3;
  double ratio_single = 0.0, ratio_dense = 0.0;
  const auto bench = [&](std::size_t workers, std::size_t chains,
                         std::uint64_t per_chain) {
    const Result r = run(workers, chains, per_chain, reps);
    const double ratio = r.mbytes_per_sec / memcpy_ref;
    if (workers == 1 && chains == 1) ratio_single = ratio;
    if (workers == 1 && chains == 10'000) ratio_dense = ratio;
    std::printf("%8zu %8zu %10llu %14.0f %12.1f %10.4fx %14.1f\n", workers,
                chains, static_cast<unsigned long long>(per_chain),
                r.packets_per_sec, r.mbytes_per_sec, ratio,
                r.packets_per_sec / static_cast<double>(chains));
    json.row({{"name", "many/" + std::to_string(workers) + "/" +
                           std::to_string(chains)},
              {"workers", static_cast<unsigned long long>(workers)},
              {"chains", static_cast<unsigned long long>(chains)},
              {"packets_per_chain", static_cast<unsigned long long>(per_chain)},
              {"packets_per_sec", r.packets_per_sec},
              {"mbytes_per_sec", r.mbytes_per_sec},
              {"vs_memcpy", ratio},
              {"per_chain_packets_per_sec",
               r.packets_per_sec / static_cast<double>(chains)}});
  };

  // Single worker: chain-count sweep up to the 10k-chains-per-core claim.
  // Total packets stay roughly constant so each row runs in similar time.
  const std::uint64_t budget = quick ? 60'000 : 240'000;
  for (const std::size_t chains :
       {std::size_t{1}, std::size_t{100}, std::size_t{1000},
        std::size_t{10'000}}) {
    bench(1, chains, std::max<std::uint64_t>(64, budget / chains));
  }
  std::printf("\n");
  // All workers: the same dense load spread across the pool. Chain count
  // scales with the pool but stays bounded — ring memory is ~24 KiB/chain.
  const std::size_t workers = std::min<std::size_t>(hw, 8);
  if (workers > 1) {
    const std::size_t dense = std::min<std::size_t>(4'000 * workers, 16'000);
    bench(workers, workers, budget / workers);
    bench(workers, dense, std::max<std::uint64_t>(64, budget / dense));
  }

  json.write();

  std::printf(
      "\nshape check: aggregate throughput should stay flat (within ~2x)\n"
      "from 1 chain to 10k chains on one worker — the multiplexed loop\n"
      "replaces parked threads, it does not add per-chain cost. per-chain\n"
      "fair-share rate then falls as 1/chains by construction.\n");

  // The within-2x claim, with a 10% measurement allowance on top (the
  // dense row is the most scheduler-noise-sensitive number in the suite).
  // --quick runs one rep and exists for smoke coverage, so it reports the
  // ratio without failing on it; the full best-of-reps run enforces.
  const bool ok =
      ratio_single <= 0.0 || ratio_dense >= 0.45 * ratio_single;
  std::printf(
      "acceptance: 10k chains/core at %.4fx memcpy vs %.4fx single-chain "
      "(within-2x gate %s%s)\n",
      ratio_dense, ratio_single, ok ? "ok" : "FAILED",
      quick ? ", advisory under --quick" : "");
  return (ok || quick) ? 0 : 1;
}
