// Multicore worker scaling: aggregate throughput of the shared-nothing
// event data plane as workers are added (docs/data_plane.md, "Worker
// model"). The chains × workers × payload matrix pins down the claim the
// per-worker buffer pools exist for: once every steady-state acquire and
// release resolves to the owning worker's arena, adding cores adds
// throughput instead of adding contention on util::default_pool()'s one
// mutex.
//
// Every chain is fully event-hosted (synthetic always-ready source, 8
// pass-through hops for the headline rows, counting sink), and every
// payload buffer cycles through BufferPool::local() ON the worker — the
// same economy the production path uses. Reported per row:
//
//   * packets_per_sec / mbytes_per_sec — aggregate across all chains;
//   * vs_memcpy        — MB/s over a same-run memcpy reference, the
//                        machine-independent number CI gates on
//                        (tools/bench_compare.py against
//                        bench/baselines/worker_scaling_baseline.json;
//                        only single-worker rows are committed — the
//                        multi-worker rows depend on hardware_threads);
//   * pool_hit_rate    — aggregated over the workers' arenas;
//   * global_lock_delta — acquisitions of util::default_pool()'s mutex
//                        during the steady-state window (must be ZERO:
//                        the shared-nothing proof).
//
// Built-in acceptance gates (exit 1 on violation):
//   * global_lock_delta == 0 on every row;
//   * steady-state pool hit rate >= 0.99 on the headline rows;
//   * >= 3x aggregate packets/s at 4 workers vs 1 on the 1 KiB x 8-filter
//     chain matrix — enforced when the host has >= 4 hardware threads
//     (a 1-core host timeshares the workers and cannot express the
//     speedup; CI's 4-core runners enforce it on every push).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/endpoint.h"
#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "util/buffer_pool.h"
#include "util/bytes.h"

using namespace rapidware;

namespace {

/// Always-ready source producing `total` packets of `payload` bytes, each
/// acquired from the CALLING thread's arena — poll_packet runs on the
/// worker, so the payload comes from (and the head endpoint returns it to)
/// that worker's pool: the steady-state economy never leaves the worker.
class SyntheticPacketSource final : public core::PacketSource {
 public:
  SyntheticPacketSource(std::uint64_t total, std::size_t payload)
      : total_(total), payload_(payload) {}

  std::optional<util::Bytes> next_packet() override {
    bool finished = false;
    return poll_packet(&finished);
  }

  void interrupt() override {
    interrupted_.store(true, std::memory_order_release);
  }

  bool pollable() const override { return true; }

  std::optional<util::Bytes> poll_packet(bool* finished) override {
    if (produced_ >= total_ || interrupted_.load(std::memory_order_acquire)) {
      *finished = true;
      return std::nullopt;
    }
    *finished = false;
    ++produced_;
    return util::BufferPool::local().acquire(payload_);
  }

  void set_scheduler(core::Scheduler*) override {}  // never would-blocks

 private:
  const std::uint64_t total_;
  const std::size_t payload_;
  std::uint64_t produced_ = 0;  // loop-thread-only (single reader contract)
  std::atomic<bool> interrupted_{false};
};

/// Shared across every chain: counts deliveries, never stores them.
class CountingPacketSink final : public core::PacketSink {
 public:
  void deliver(util::ByteSpan packet) override {
    packets_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(packet.size(), std::memory_order_relaxed);
  }

  std::uint64_t packets() const {
    return packets_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

class PassThroughPacketFilter final : public core::PacketFilter {
 public:
  using PacketFilter::PacketFilter;

 protected:
  void on_packet(util::Bytes packet) override { emit(std::move(packet)); }
};

// Ring sizing: deep enough that one worker wakeup batches several frames
// even at the 1 KiB headline payload (~15 frames per ring).
constexpr std::size_t kRing = 16384;

struct Result {
  double packets_per_sec = 0.0;
  double mbytes_per_sec = 0.0;
  double pool_hit_rate = 0.0;
  std::uint64_t global_lock_delta = 0;
};

Result run_once(std::size_t workers, std::size_t chains, std::size_t filters,
                std::size_t payload, std::uint64_t packets_per_chain) {
  core::WorkerPool pool(workers);
  auto sink = std::make_shared<CountingPacketSink>();

  // Pre-warm each worker's arena: fill the size-class buckets the run will
  // cycle through (payload buffers plus the framed copies a couple of
  // classes up) to their cap, ON the loop thread, before any chain starts.
  // A long-running proxy reaches this residency organically; doing it
  // up front makes the steady-state window deterministic — without it the
  // last-started chain's first-touch misses (each one an empty refill probe
  // against the parent's mutex) can straddle the measurement boundary.
  const std::size_t bucket_cap = util::BufferPool::Config{}.max_buffers_per_bucket;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.worker(w).post([payload, bucket_cap] {
      auto& arena = util::BufferPool::local();
      std::vector<util::Bytes> held;
      held.reserve(4 * bucket_cap);
      for (std::size_t size = payload; size <= payload * 8; size *= 2) {
        for (std::size_t i = 0; i < bucket_cap; ++i) {
          held.push_back(arena.acquire(size));
        }
      }
      for (auto& b : held) arena.release(std::move(b));
    });
    pool.worker(w).sync();
  }

  std::vector<std::unique_ptr<core::FilterChain>> live;
  live.reserve(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    auto source =
        std::make_shared<SyntheticPacketSource>(packets_per_chain, payload);
    auto chain = std::make_unique<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("rx", source, kRing),
        std::make_shared<core::PacketWriterEndpoint>("tx", sink, kRing));
    // Deterministic spread: the scaling rows measure the shared-nothing
    // pools, not the placement heuristic (which has its own tests); an
    // unlucky placement collision must not wobble the speedup gate.
    chain->host_on(pool.worker(c % workers));
    chain->start();
    for (std::size_t f = 0; f < filters; ++f) {
      chain->insert(std::make_shared<PassThroughPacketFilter>(
                        "p" + std::to_string(f), kRing),
                    f);
    }
    live.push_back(std::move(chain));
  }

  const std::uint64_t total = packets_per_chain * chains;
  const auto t0 = std::chrono::steady_clock::now();

  // Steady-state window: the back three quarters of the run. The arenas
  // are pre-warmed, so from here on every acquire should be a local hit
  // and the global pool's mutex must not be touched at all. Hit rate is
  // computed over this window (the pre-warm's deliberate first-touch
  // misses are start-up cost, not steady-state behaviour).
  while (sink->packets() < total / 4) std::this_thread::yield();
  const std::uint64_t global0 = util::default_pool().lock_acquires();
  std::uint64_t hits0 = 0, misses0 = 0;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    const util::BufferPool::Stats s = pool.worker(w).pool().stats();
    hits0 += s.hits;
    misses0 += s.misses;
  }
  while (sink->packets() < total) std::this_thread::yield();
  const std::uint64_t global1 = util::default_pool().lock_acquires();

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Result r;
  r.packets_per_sec = static_cast<double>(total) / secs;
  r.mbytes_per_sec = static_cast<double>(sink->bytes()) / secs / 1e6;
  r.global_lock_delta = global1 - global0;
  std::uint64_t hits = 0, misses = 0;
  for (std::size_t w = 0; w < pool.size(); ++w) {
    const util::BufferPool::Stats s = pool.worker(w).pool().stats();
    hits += s.hits;
    misses += s.misses;
  }
  hits -= hits0;
  misses -= misses0;
  r.pool_hit_rate = (hits + misses) == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);

  // Teardown off the clock: async shutdowns retire in parallel, then the
  // destructors just join.
  for (auto& chain : live) chain->begin_shutdown();
  live.clear();
  pool.stop();
  return r;
}

Result run(std::size_t workers, std::size_t chains, std::size_t filters,
           std::size_t payload, std::uint64_t packets_per_chain, int reps) {
  // Best of reps: the fastest run is the one least distorted by unrelated
  // scheduler noise. Pool/lock gates apply to every rep, so take the
  // strictest (max) lock delta and the lowest hit rate.
  Result best{};
  for (int i = 0; i < reps; ++i) {
    const Result r =
        run_once(workers, chains, filters, payload, packets_per_chain);
    if (r.packets_per_sec > best.packets_per_sec) {
      const std::uint64_t worst_delta =
          std::max(best.global_lock_delta, r.global_lock_delta);
      const double worst_hit = i == 0 ? r.pool_hit_rate
                                      : std::min(best.pool_hit_rate,
                                                 r.pool_hit_rate);
      best = r;
      best.global_lock_delta = worst_delta;
      best.pool_hit_rate = worst_hit;
    } else {
      best.global_lock_delta =
          std::max(best.global_lock_delta, r.global_lock_delta);
      best.pool_hit_rate = std::min(best.pool_hit_rate, r.pool_hit_rate);
    }
  }
  return best;
}

double memcpy_ref_mbps() {
  // Same normalization reference as the other data-plane benches:
  // single-thread 64 KiB memcpy, best of 5.
  constexpr std::size_t kChunk = 65536;
  constexpr int kChunks = 4096;
  util::Bytes src(kChunk, 0xaa), dst(kChunk, 0);
  volatile std::uint8_t guard = 0;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunks; ++i) {
      std::copy(src.begin(), src.end(), dst.begin());
      guard = guard + dst[kChunk - 1];
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, kChunk * static_cast<double>(kChunks) / secs / 1e6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== Worker scaling (shared-nothing pools) ===\n\n");
  rwbench::JsonSummary json("worker_scaling");
  json.meta("rw_obs_enabled", RW_OBS_ENABLED != 0);
  json.meta("quick", quick);
  json.meta("hardware_threads", static_cast<unsigned long long>(hw));
  json.meta("ring_bytes", static_cast<unsigned long long>(kRing));
  const double memcpy_ref = memcpy_ref_mbps();
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);

  std::printf("%8s %7s %8s %8s %14s %10s %11s %9s %7s\n", "workers", "chains",
              "filters", "payload", "packets/s", "MB/s", "vs_memcpy",
              "hit_rate", "g.lock");
  const int reps = quick ? 1 : 3;
  bool failed = false;
  // headline pkt/s by worker count, for the 4-vs-1 speedup gate.
  double headline_1w = 0.0, headline_4w = 0.0;
  const auto bench = [&](std::size_t workers, std::size_t chains,
                         std::size_t filters, std::size_t payload,
                         std::uint64_t per_chain, bool headline) {
    const Result r = run(workers, chains, filters, payload, per_chain, reps);
    const double ratio = r.mbytes_per_sec / memcpy_ref;
    std::printf("%8zu %7zu %8zu %8zu %14.0f %10.1f %10.4fx %9.4f %7llu\n",
                workers, chains, filters, payload, r.packets_per_sec,
                r.mbytes_per_sec, ratio, r.pool_hit_rate,
                static_cast<unsigned long long>(r.global_lock_delta));
    json.row({{"name", "scale/" + std::to_string(workers) + "w/" +
                           std::to_string(chains) + "c/" +
                           std::to_string(filters) + "f/" +
                           std::to_string(payload) + "B"},
              {"workers", static_cast<unsigned long long>(workers)},
              {"chains", static_cast<unsigned long long>(chains)},
              {"filters", static_cast<unsigned long long>(filters)},
              {"payload_bytes", static_cast<unsigned long long>(payload)},
              {"packets_per_sec", r.packets_per_sec},
              {"mbytes_per_sec", r.mbytes_per_sec},
              {"vs_memcpy", ratio},
              {"pool_hit_rate", r.pool_hit_rate},
              {"global_lock_delta",
               static_cast<unsigned long long>(r.global_lock_delta)}});
    if (headline && workers == 1) headline_1w = r.packets_per_sec;
    if (headline && workers == 4) headline_4w = r.packets_per_sec;

    // Shared-nothing gate: the steady-state window must not acquire the
    // global pool's mutex, on any row, in any mode.
    if (r.global_lock_delta != 0) {
      std::fprintf(stderr,
                   "FAIL: %zu-worker row acquired the global pool mutex "
                   "%llu times in steady state (must be 0)\n",
                   workers,
                   static_cast<unsigned long long>(r.global_lock_delta));
      failed = true;
    }
    // Recycling gate: the warm worker arenas must serve (nearly) every
    // steady-state acquire locally.
    if (headline && r.pool_hit_rate < 0.99) {
      std::fprintf(stderr,
                   "FAIL: headline %zu-worker pool hit rate %.4f < 0.99\n",
                   workers, r.pool_hit_rate);
      failed = true;
    }
  };

  // Payload sweep, single worker: the per-packet pool economy across size
  // classes. Committed-baseline rows (machine-independent vs_memcpy).
  const std::uint64_t budget = quick ? 4'000 : 40'000;
  bench(1, 4, 2, 256, budget, false);
  bench(1, 4, 2, 4096, budget / 2, false);

  // Headline matrix: 8 chains x 8 pass-through filters x 1 KiB payload,
  // scaled across workers. The 1-worker row is committed to the baseline;
  // the multi-worker rows exist wherever the host can run them and feed
  // the 4-vs-1 speedup gate.
  bench(1, 8, 8, 1024, budget / 8, true);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    if (hw >= 2) bench(workers, 8, 8, 1024, budget / 8, true);
  }

  json.write();

  if (headline_1w > 0.0 && headline_4w > 0.0 && hw >= 4 && !quick) {
    const double speedup = headline_4w / headline_1w;
    std::printf("\n4-worker speedup over 1 worker (8x8f/1KiB): %.2fx\n",
                speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 4-worker aggregate speedup %.2fx < 3.0x on a "
                   "%zu-thread host\n",
                   speedup, hw);
      failed = true;
    }
  } else {
    std::printf(
        "\n4-vs-1 speedup gate skipped (hardware_threads=%zu%s); the gate "
        "needs >= 4 threads and full mode.\n",
        hw, quick ? ", --quick" : "");
  }

  std::printf(
      "\nshape check: packets/s should rise near-linearly with workers while\n"
      "hit_rate stays >= 0.99 and g.lock stays 0 — each worker's buffers\n"
      "cycle entirely through its own arena once warm.\n");
  return failed ? EXIT_FAILURE : EXIT_SUCCESS;
}
