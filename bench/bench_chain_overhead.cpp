// Chain-length overhead: throughput of a proxy chain as null filters are
// added. Each filter adds one thread and one detachable-stream hop, so this
// measures the cost of composability itself — the framework must stay
// "lightweight" (Section 6's contrast with cluster-based proxies).
//
// Besides raw packets/s the bench reports:
//   * vs_memcpy            — MB/s normalized by a same-run memcpy baseline,
//                            the machine-independent number CI gates on
//                            (tools/bench_compare.py --rwbench);
//   * allocs_per_10k_packets — global operator-new calls during the run.
//     The harness itself owns ~2 allocations per packet (QueuePacketSource
//     copy-in, CollectingPacketSink copy-out); the per-hop cost on top of
//     that is what util::BufferPool is meant to hold at zero.
//   * pool_hit_rate        — util::default_pool() acquire hit rate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

#include "bench_json.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "obs/metrics.h"
#include "util/buffer_pool.h"
#include "util/stats.h"

using namespace rapidware;

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// Count every scalar heap allocation. The aligned/nothrow overloads fall
// back to the library defaults — fine, the data plane does not use them.
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct Result {
  double packets_per_sec;
  double mbytes_per_sec;
  double allocs_per_10k;
  double pool_hit_rate;
};

Result run_once(std::size_t chain_len, std::size_t packet_bytes,
                int packets) {
  // The registry must outlive the chain: the chain's destructor unbinds
  // its metrics scope into it.
  obs::Registry metrics;
  auto source = std::make_shared<core::QueuePacketSource>();
  auto sink = std::make_shared<core::CollectingPacketSink>();
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::PacketReaderEndpoint>("in", source),
      std::make_shared<core::PacketWriterEndpoint>("out", sink));
  // Bind metrics exactly as a live proxy would, so this bench measures the
  // instrumented hot path (compare a -DRW_OBS=OFF build: EXPERIMENTS.md).
  chain->bind_metrics(metrics, "bench/chain");
  chain->start();
  for (std::size_t i = 0; i < chain_len; ++i) {
    chain->insert(std::make_shared<core::NullFilter>("n" + std::to_string(i)),
                  i);
  }

  const util::Bytes packet(packet_bytes, 0x77);
  const util::BufferPool::Stats pool0 = util::default_pool().stats();
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&] {
    for (int i = 0; i < packets; ++i) source->push(packet);
    source->finish();
  });
  producer.join();
  chain->shutdown();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs0;
  const util::BufferPool::Stats pool1 = util::default_pool().stats();
  const std::uint64_t pool_hits = pool1.hits - pool0.hits;
  const std::uint64_t pool_total =
      pool_hits + (pool1.misses - pool0.misses);

  Result r;
  r.packets_per_sec = packets / secs;
  r.mbytes_per_sec = packets / secs * static_cast<double>(packet_bytes) / 1e6;
  r.allocs_per_10k = static_cast<double>(allocs) * 10'000.0 / packets;
  r.pool_hit_rate = pool_total == 0
                        ? 0.0
                        : static_cast<double>(pool_hits) / pool_total;
  return r;
}

/// Best throughput of `reps` runs: on a single-core shared host the
/// end-to-end chain is scheduling-dominated, and the fastest run is the one
/// least distorted by unrelated wakeups (same envelope logic as
/// bench_stream_throughput). Alloc/pool numbers come from the last run —
/// they are deterministic, not timing-sensitive.
Result run(std::size_t chain_len, std::size_t packet_bytes, int packets,
           int reps) {
  Result best{};
  for (int i = 0; i < reps; ++i) {
    Result r = run_once(chain_len, packet_bytes, packets);
    r.packets_per_sec = std::max(r.packets_per_sec, best.packets_per_sec);
    r.mbytes_per_sec = std::max(r.mbytes_per_sec, best.mbytes_per_sec);
    best = r;
  }
  return best;
}

double memcpy_ref_mbps() {
  // Same normalization reference as bench_stream_throughput: single-thread
  // 64 KiB memcpy, best of 5.
  constexpr std::size_t kChunk = 65536;
  constexpr int kChunks = 4096;
  util::Bytes src(kChunk, 0xaa), dst(kChunk, 0);
  volatile std::uint8_t guard = 0;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunks; ++i) {
      std::copy(src.begin(), src.end(), dst.begin());
      guard = guard + dst[kChunk - 1];
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, kChunk * static_cast<double>(kChunks) / secs / 1e6);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  std::printf("=== Chain-length overhead (null filters, end-to-end) ===\n\n");
  rwbench::JsonSummary json("chain_overhead");
  json.meta("rw_obs_enabled", RW_OBS_ENABLED != 0);
  json.meta("quick", quick);
  const double memcpy_ref = memcpy_ref_mbps();
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);

  std::printf("%10s %10s %16s %14s %11s %12s %9s\n", "filters", "pkt B",
              "packets/s", "MB/s", "vs_memcpy", "allocs/10k", "pool hit");
  const int reps = quick ? 1 : 3;
  const auto bench = [&](std::size_t len, std::size_t bytes, int packets) {
    const Result r = run(len, bytes, packets, reps);
    const double ratio = r.mbytes_per_sec / memcpy_ref;
    std::printf("%10zu %10zu %16.0f %14.1f %10.4fx %12.0f %8.2f%%\n", len,
                bytes, r.packets_per_sec, r.mbytes_per_sec, ratio,
                r.allocs_per_10k, r.pool_hit_rate * 100.0);
    json.row({{"name", "chain/" + std::to_string(len) + "/" +
                           std::to_string(bytes)},
              {"filters", static_cast<long long>(len)},
              {"packet_bytes", static_cast<long long>(bytes)},
              {"packets", packets},
              {"packets_per_sec", r.packets_per_sec},
              {"mbytes_per_sec", r.mbytes_per_sec},
              {"vs_memcpy", ratio},
              {"allocs_per_10k_packets", r.allocs_per_10k},
              {"pool_hit_rate", r.pool_hit_rate}});
  };

  const int small_packets = quick ? 50'000 : 200'000;
  for (const std::size_t len : {0u, 1u, 2u, 4u, 8u, 16u}) {
    bench(len, 320, small_packets);
  }
  std::printf("\n");
  // 1 KiB is the headline packet size for data-plane acceptance
  // (EXPERIMENTS.md tracks chain/8/1024 against the PR-4 seed).
  for (const std::size_t len : {0u, 1u, 2u, 4u, 8u}) {
    bench(len, 1024, small_packets);
  }
  std::printf("\n");
  for (const std::size_t len : {0u, 4u, 16u}) {
    bench(len, 65536, quick ? 10'000 : 50'000);
  }
  json.write();
  std::printf(
      "\nshape check: per-filter cost is one buffer copy plus one thread\n"
      "hand-off, so throughput stays within the same order of magnitude\n"
      "even at 16 filters (pipeline parallelism can even help with large\n"
      "packets) — orders of magnitude above the 2 Mbps WaveLAN the proxy\n"
      "actually feeds. allocs/10k counts the whole process including the\n"
      "bench harness (~2 allocs/packet of copy-in/copy-out); the pool keeps\n"
      "the per-hop contribution near zero.\n");
  return 0;
}
