// Chain-length overhead: throughput of a proxy chain as null filters are
// added. Each filter adds one thread and one detachable-stream hop, so this
// measures the cost of composability itself — the framework must stay
// "lightweight" (Section 6's contrast with cluster-based proxies).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "obs/metrics.h"
#include "util/stats.h"

using namespace rapidware;

namespace {

struct Result {
  double packets_per_sec;
  double mbytes_per_sec;
};

Result run(std::size_t chain_len, std::size_t packet_bytes, int packets) {
  // The registry must outlive the chain: the chain's destructor unbinds
  // its metrics scope into it.
  obs::Registry metrics;
  auto source = std::make_shared<core::QueuePacketSource>();
  auto sink = std::make_shared<core::CollectingPacketSink>();
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::PacketReaderEndpoint>("in", source),
      std::make_shared<core::PacketWriterEndpoint>("out", sink));
  // Bind metrics exactly as a live proxy would, so this bench measures the
  // instrumented hot path (compare a -DRW_OBS=OFF build: EXPERIMENTS.md).
  chain->bind_metrics(metrics, "bench/chain");
  chain->start();
  for (std::size_t i = 0; i < chain_len; ++i) {
    chain->insert(std::make_shared<core::NullFilter>("n" + std::to_string(i)),
                  i);
  }

  const util::Bytes packet(packet_bytes, 0x77);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&] {
    for (int i = 0; i < packets; ++i) source->push(packet);
    source->finish();
  });
  producer.join();
  chain->shutdown();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Result r;
  r.packets_per_sec = packets / secs;
  r.mbytes_per_sec = packets / secs * static_cast<double>(packet_bytes) / 1e6;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Chain-length overhead (null filters, end-to-end) ===\n\n");
  std::printf("%10s %10s %16s %14s\n", "filters", "pkt B", "packets/s",
              "MB/s");
  rwbench::JsonSummary json("chain_overhead");
  json.meta("rw_obs_enabled", RW_OBS_ENABLED != 0);
  constexpr int kPackets = 200'000;
  for (const std::size_t len : {0u, 1u, 2u, 4u, 8u, 16u}) {
    const Result r = run(len, 320, kPackets);
    std::printf("%10zu %10u %16.0f %14.1f\n", len, 320u, r.packets_per_sec,
                r.mbytes_per_sec);
    json.row({{"filters", len},
              {"packet_bytes", 320},
              {"packets", kPackets},
              {"packets_per_sec", r.packets_per_sec},
              {"mbytes_per_sec", r.mbytes_per_sec}});
  }
  std::printf("\n");
  for (const std::size_t len : {0u, 4u, 16u}) {
    const Result r = run(len, 65536, 50'000);
    std::printf("%10zu %10u %16.0f %14.1f\n", len, 65536u, r.packets_per_sec,
                r.mbytes_per_sec);
    json.row({{"filters", len},
              {"packet_bytes", 65536},
              {"packets", 50'000},
              {"packets_per_sec", r.packets_per_sec},
              {"mbytes_per_sec", r.mbytes_per_sec}});
  }
  json.write();
  std::printf(
      "\nshape check: per-filter cost is one buffer copy plus one thread\n"
      "hand-off, so throughput stays within the same order of magnitude\n"
      "even at 16 filters (pipeline parallelism can even help with large\n"
      "packets) — orders of magnitude above the 2 Mbps WaveLAN the proxy\n"
      "actually feeds.\n");
  return 0;
}
