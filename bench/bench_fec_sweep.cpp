// FEC (n, k) design space — why the paper picks small groups.
//
// Sweeps code parameters at fixed link conditions and reports, per (n, k):
// recovery rate, bandwidth overhead (n/k), and group-assembly latency in
// packet times (k - 1 packets must arrive before the group can be encoded;
// the decoder adds the same again when recovering). The paper: "we use
// small groups so as to minimize jitter" (Section 5); larger groups recover
// more at the same overhead but delay the stream.
#include <cstdio>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "net/loss.h"
#include "util/stats.h"

using namespace rapidware;

namespace {

double run_code(std::size_t n, std::size_t k, double loss_rate,
                double burst_len, int packets, std::uint64_t seed) {
  auto channel = net::GilbertElliottLoss::with_average(loss_rate, burst_len, 0.6);
  util::Rng rng(seed);
  fec::GroupEncoder encoder(n, k);
  fec::GroupDecoder decoder(4);
  std::size_t delivered = 0;
  for (int i = 0; i < packets; ++i) {
    util::Bytes payload(320, static_cast<std::uint8_t>(i));
    for (const auto& wire : encoder.add(payload)) {
      if (!channel->drop(rng)) delivered += decoder.add(wire).size();
    }
  }
  for (const auto& wire : encoder.flush()) {
    if (!channel->drop(rng)) delivered += decoder.add(wire).size();
  }
  delivered += decoder.flush().size();
  return static_cast<double>(delivered) / packets;
}

}  // namespace

int main() {
  constexpr int kPackets = 30'000;
  const struct {
    std::size_t n, k;
  } codes[] = {{5, 4},  {6, 4},  {8, 4},  {10, 8}, {12, 8},
               {16, 8}, {24, 16}, {48, 32}, {96, 64}};

  rwbench::JsonSummary json("fec_sweep");
  json.meta("packets_per_code", kPackets);
  for (const double loss : {0.0146, 0.05, 0.15}) {
    std::printf("=== FEC (n,k) sweep at %s average loss (bursty) ===\n",
                util::percent(loss).c_str());
    std::printf("%8s %10s %12s %14s %18s\n", "(n,k)", "overhead",
                "recovery", "residual", "latency (pkts)");
    for (const auto& code : codes) {
      const double rate =
          run_code(code.n, code.k, loss, 1.2, kPackets,
                   code.n * 1000 + code.k + static_cast<std::uint64_t>(loss * 1e4));
      std::printf("%4zu,%-3zu %9.2fx %12s %14s %18zu\n", code.n, code.k,
                  static_cast<double>(code.n) / static_cast<double>(code.k),
                  util::percent(rate).c_str(),
                  util::percent(1.0 - rate, 3).c_str(), code.k - 1);
      json.row({{"loss", loss},
                {"n", code.n},
                {"k", code.k},
                {"overhead", static_cast<double>(code.n) /
                                 static_cast<double>(code.k)},
                {"recovery_rate", rate},
                {"latency_packets", code.k - 1}});
    }
    std::printf("\n");
  }
  json.write();

  std::printf(
      "shape check: at fixed overhead (6,4 vs 12,8 vs 24,16), larger groups\n"
      "recover more (they ride out bursts) but wait k-1 packet times before\n"
      "encoding — the jitter the paper avoids with small groups.\n");
  return 0;
}
