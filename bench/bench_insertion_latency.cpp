// Hot insertion/removal latency — the cost of the pause/reconnect protocol.
//
// Section 3 requires that inserting a filter "should not disturb the
// connection"; the price of a splice is a brief stall of the stream while
// the left stream pauses, drains, and reconnects. This bench measures
// insert and remove latency on a live stream versus chain length and
// packet size, and verifies the no-loss guarantee each time.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "util/stats.h"

using namespace rapidware;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Result {
  util::RunningStats insert_us;
  util::RunningStats remove_us;
  bool lossless = false;
};

Result run(std::size_t chain_len, std::size_t packet_bytes, int cycles) {
  auto source = std::make_shared<core::QueuePacketSource>();
  auto sink = std::make_shared<core::CollectingPacketSink>();
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::PacketReaderEndpoint>("in", source),
      std::make_shared<core::PacketWriterEndpoint>("out", sink));
  chain->start();
  for (std::size_t i = 0; i < chain_len; ++i) {
    chain->insert(std::make_shared<core::NullFilter>("n" + std::to_string(i)),
                  i);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0};
  std::thread producer([&] {
    util::Bytes packet(packet_bytes, 0xab);
    while (!stop.load(std::memory_order_acquire)) {
      source->push(packet);
      produced.fetch_add(1, std::memory_order_relaxed);
      // ~16 KB/s media cadence scaled up: keep the pipe busy but not full.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    source->finish();
  });

  Result result;
  std::shared_ptr<core::Filter> probe =
      std::make_shared<core::NullFilter>("probe");
  const std::size_t pos = chain_len / 2;
  for (int i = 0; i < cycles; ++i) {
    double t0 = now_us();
    chain->insert(probe, pos);
    result.insert_us.add(now_us() - t0);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    t0 = now_us();
    probe = chain->remove(pos);
    result.remove_us.add(now_us() - t0);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  stop.store(true, std::memory_order_release);
  producer.join();
  chain->shutdown();
  result.lossless = sink->count() == produced.load();
  return result;
}

}  // namespace

int main() {
  std::printf("=== Hot insertion / removal latency (live stream) ===\n\n");
  std::printf("%10s %10s %14s %14s %14s %14s %9s\n", "chain len", "pkt B",
              "insert mean", "insert max", "remove mean", "remove max",
              "lossless");
  constexpr int kCycles = 200;
  rwbench::JsonSummary json("insertion_latency");
  json.meta("cycles", kCycles);
  for (const std::size_t len : {0u, 2u, 4u, 8u}) {
    for (const std::size_t bytes : {256u, 4096u}) {
      const Result r = run(len, bytes, kCycles);
      std::printf("%10zu %10zu %11.1f us %11.1f us %11.1f us %11.1f us %9s\n",
                  len, bytes, r.insert_us.mean(), r.insert_us.max(),
                  r.remove_us.mean(), r.remove_us.max(),
                  r.lossless ? "yes" : "NO");
      json.row({{"chain_len", len},
                {"packet_bytes", bytes},
                {"insert_mean_us", r.insert_us.mean()},
                {"insert_max_us", r.insert_us.max()},
                {"remove_mean_us", r.remove_us.mean()},
                {"remove_max_us", r.remove_us.max()},
                {"lossless", r.lossless}});
    }
  }
  json.write();
  std::printf(
      "\nshape check: latency is micro- to milli-seconds, independent of\n"
      "chain length (only the splice point pauses; the rest keeps flowing),\n"
      "and removal costs more than insertion (it drains the filter twice —\n"
      "its input pipe, then its flushed output).\n");
  return 0;
}
