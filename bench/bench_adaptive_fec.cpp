// Demand-driven vs static FEC over the roaming trace — the RAPIDware
// adaptation story quantified (Sections 2-3).
//
// One mobile receiver walks office -> conference room -> office while
// receiving a live audio stream through a proxy. Three strategies:
//
//   never-on   — plain forwarding; loss appears as soon as she roams;
//   always-on  — FEC(6,4) from the start; best delivery, constant +50%
//                bandwidth even while she sits next to the access point;
//   on-demand  — loss observer + FEC responder insert/remove the filter
//                while the stream runs.
//
// Reports delivery, bandwidth overhead, and the responder's reaction time.
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "filters/fec_filters.h"
#include "filters/registry.h"
#include "filters/stats_filter.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "proxy/proxy.h"
#include "raplets/adaptation_manager.h"
#include "raplets/fec_responder.h"
#include "raplets/loss_observer.h"
#include "raplets/receiver_report.h"
#include "util/stats.h"
#include "wireless/mobility.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

enum class Strategy { kNever, kAlways, kOnDemand };

struct Outcome {
  double delivery;
  double overhead;        // wire bytes / media bytes
  double reaction_s = -1; // time from loss onset to FEC insertion
  int reconfigs = 0;
};

Outcome run(Strategy strategy) {
  filters::register_builtin_filters();
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 77);
  const auto sender_node = net.add_node("sender");
  const auto proxy_node = net.add_node("proxy");
  const auto mobile_node = net.add_node("mobile");

  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(mobile_node, 5.0);

  proxy::ProxyConfig config;
  config.ingress_port = 4000;
  config.egress_dst = {mobile_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();
  auto egress_tap = std::make_shared<filters::StatsFilter>("egress");
  proxy.chain().insert(egress_tap, 0);
  if (strategy == Strategy::kAlways) {
    proxy.chain().insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);
  }

  // Adaptation plumbing (used only by on-demand).
  auto observer_socket = net.open(proxy_node, 7000);
  auto observer = std::make_shared<raplets::LossObserver>(observer_socket, 0.5);
  raplets::FecResponderConfig rc;
  rc.insert_threshold = 0.02;
  rc.remove_threshold = 0.004;
  rc.cooldown_us = 2'000'000;
  auto responder = std::make_shared<raplets::FecResponder>(
      core::ControlManager(proxy::network_control_transport(
          net, proxy_node, proxy.control_address())),
      std::nullopt, rc);
  raplets::AdaptationManager adaptation(observer, responder);
  if (strategy == Strategy::kOnDemand) adaptation.start();

  // Mobile receiver with pass-through decoder and raw-loss reporting.
  auto rx = net.open(mobile_node, 5000);
  auto report_socket = net.open(mobile_node);
  raplets::ReportSender reports("mobile", report_socket, {proxy_node, 7000},
                                50);
  fec::GroupDecoder decoder(4);
  media::ReceiverLog log;
  std::uint64_t last_ok = 0, last_miss = 0;
  reports.set_raw_loss_provider([&]() -> double {
    const auto& s = decoder.stats();
    const std::uint64_t ok = s.data_received;
    const std::uint64_t miss = s.data_recovered + s.data_lost;
    const std::uint64_t d_ok = ok - last_ok, d_miss = miss - last_miss;
    last_ok = ok;
    last_miss = miss;
    return (d_ok + d_miss) == 0 ? -1.0
                                : static_cast<double>(d_miss) /
                                      static_cast<double>(d_ok + d_miss);
  });

  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      std::vector<util::Bytes> payloads;
      if (fec::looks_like_fec_packet(d->payload)) {
        payloads = decoder.add(d->payload);
      } else {
        payloads.push_back(d->payload);
      }
      for (const auto& p : payloads) {
        const auto media = media::MediaPacket::parse(p);
        log.on_packet(media, d->deliver_at);
        reports.on_delivered(media.seq, d->deliver_at);
      }
    }
  });

  // Walk: 20 s near, 30 s out to 36 m, 40 s there, 30 s back, 20 s near.
  const wireless::WaypointWalk walk({{util::seconds_to_micros(0), 5.0},
                                     {util::seconds_to_micros(20), 5.0},
                                     {util::seconds_to_micros(50), 36.0},
                                     {util::seconds_to_micros(90), 36.0},
                                     {util::seconds_to_micros(120), 5.0},
                                     {util::seconds_to_micros(140), 5.0}});
  // Loss crosses the responder's 2% insert threshold at this distance:
  const double onset_distance =
      wireless::wavelan_model().distance_for(rc.insert_threshold);
  double onset_s = -1;

  auto tx = net.open(sender_node);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  std::uint64_t media_bytes = 0;
  const int total_packets =
      static_cast<int>(util::micros_to_seconds(walk.end_time()) * 50);
  for (int i = 0; i < total_packets; ++i) {
    const double distance = walk.distance_at(clock->now());
    if (onset_s < 0 && distance >= onset_distance) {
      onset_s = util::micros_to_seconds(clock->now());
    }
    wlan.set_distance(mobile_node, distance);
    const auto wire = packetizer.next_packet().serialize();
    media_bytes += wire.size();
    tx->send_to({proxy_node, 4000}, wire);
    clock->advance(20'000);
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  adaptation.stop();
  const std::uint64_t wire_bytes = egress_tap->bytes();
  proxy.shutdown();

  Outcome outcome;
  outcome.delivery = log.delivery_rate();
  outcome.overhead =
      static_cast<double>(wire_bytes) / static_cast<double>(media_bytes);
  outcome.reconfigs = static_cast<int>(responder->history().size());
  for (const auto& action : responder->history()) {
    if (action.inserted) {
      outcome.reaction_s = util::micros_to_seconds(action.at) - onset_s;
      break;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Demand-driven vs static FEC over a roaming trace ===\n");
  std::printf("(140 s walk: office 5 m -> conference room 36 m -> office)\n\n");
  std::printf("%-10s %10s %12s %14s %10s\n", "strategy", "delivery",
              "overhead", "reaction", "reconfigs");

  const struct {
    const char* name;
    Strategy strategy;
  } rows[] = {{"never", Strategy::kNever},
              {"always", Strategy::kAlways},
              {"on-demand", Strategy::kOnDemand}};
  rwbench::JsonSummary json("adaptive_fec");
  json.meta("walk_seconds", 140);
  json.meta("fec_n", 6);
  json.meta("fec_k", 4);
  for (const auto& row : rows) {
    const Outcome o = run(row.strategy);
    char reaction[32] = "-";
    if (o.reaction_s >= 0) {
      std::snprintf(reaction, sizeof(reaction), "%.1f s", o.reaction_s);
    }
    std::printf("%-10s %10s %11.2fx %14s %10d\n", row.name,
                util::percent(o.delivery).c_str(), o.overhead, reaction,
                o.reconfigs);
    json.row({{"strategy", row.name},
              {"delivery", o.delivery},
              {"overhead", o.overhead},
              {"reaction_s", o.reaction_s},
              {"reconfigs", o.reconfigs}});
  }
  json.write();
  std::printf(
      "\nshape check: on-demand approaches always-on delivery while paying\n"
      "the +50%% FEC bandwidth only during the lossy middle of the walk;\n"
      "reaction time is a few report windows after loss crosses the\n"
      "threshold.\n");
  return 0;
}
