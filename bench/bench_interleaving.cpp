// Burst-loss ablation: block erasure codes vs loss burstiness, with and
// without interleaving.
//
// A (6,4) code absorbs at most 2 losses per group, so burst length — not
// just average loss — decides recovery (the reason wireless FEC papers,
// including the paper's companion work [13,16], obsess over burstiness).
// Interleaving across groups trades latency for burst resistance. This
// bench sweeps Gilbert-Elliott burst lengths at fixed average loss.
#include <cstdio>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "fec/interleaver.h"
#include "net/loss.h"
#include "util/stats.h"

using namespace rapidware;

namespace {

double run(double avg_loss, double burst_len, std::size_t depth, int packets,
           std::uint64_t seed) {
  auto channel = net::GilbertElliottLoss::with_average(avg_loss, burst_len, 0.9);
  util::Rng rng(seed);
  fec::GroupEncoder encoder(6, 4);
  // Reordering after a lossy channel must key on (group, index) — a
  // position-based de-interleaver cannot know which slots were dropped.
  // The GroupDecoder does exactly that; its window scales with the
  // interleave depth (that window *is* the latency cost).
  fec::GroupDecoder decoder(2 * depth + 2);
  fec::BlockInterleaver interleaver(6, depth);  // depth 1 = no interleaving

  std::size_t delivered = 0;
  auto transmit = [&](const util::Bytes& wire) {
    if (channel->drop(rng)) return;
    delivered += decoder.add(wire).size();
  };
  for (int i = 0; i < packets; ++i) {
    util::Bytes payload(320, static_cast<std::uint8_t>(i));
    for (const auto& wire : encoder.add(payload)) {
      for (const auto& out : interleaver.add(wire)) transmit(out);
    }
  }
  for (const auto& wire : encoder.flush()) {
    for (const auto& out : interleaver.add(wire)) transmit(out);
  }
  for (const auto& out : interleaver.flush()) transmit(out);
  delivered += decoder.flush().size();
  return static_cast<double>(delivered) / packets;
}

}  // namespace

int main() {
  constexpr int kPackets = 30'000;
  constexpr double kLoss = 0.05;

  std::printf("=== FEC(6,4) vs burst length at %s average loss ===\n\n",
              util::percent(kLoss).c_str());
  std::printf("%12s %14s %16s %16s\n", "burst len", "no interleave",
              "interleave x4", "interleave x8");
  rwbench::JsonSummary json("interleaving");
  json.meta("avg_loss", kLoss);
  json.meta("packets", kPackets);
  for (const double burst : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double plain = run(kLoss, burst, 1, kPackets, 11);
    const double il4 = run(kLoss, burst, 4, kPackets, 12);
    const double il8 = run(kLoss, burst, 8, kPackets, 13);
    std::printf("%12.0f %14s %16s %16s\n", burst,
                util::percent(plain).c_str(), util::percent(il4).c_str(),
                util::percent(il8).c_str());
    json.row({{"burst_len", burst},
              {"recovery_plain", plain},
              {"recovery_interleave_x4", il4},
              {"recovery_interleave_x8", il8}});
  }
  json.write();
  std::printf("\nadded buffering latency: x4 = %d packets, x8 = %d packets\n",
              6 * 4, 6 * 8);
  std::printf(
      "\nshape check: recovery degrades as bursts lengthen past the code's\n"
      "parity budget; interleaving restores it at the price of block-sized\n"
      "latency — unusable for the paper's interactive audio, which instead\n"
      "keeps groups small and loss rates low (Figure 7's regime).\n");
  return 0;
}
