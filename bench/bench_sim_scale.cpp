// Fleet-scale simulation: virtual-time throughput + adaptive-FEC recovery.
//
// Two jobs in one binary:
//
//  1. Perf gate ("scale/<stations>" rows): how many station·virtual-seconds
//     per wall-clock second the discrete-event fleet core sustains. The
//     machine-independent number is vs_memcpy — station·vsec/s divided by
//     the same run's 64 KiB memcpy MB/s — gated by tools/bench_compare.py
//     against bench/baselines/sim_scale_baseline.json.
//
//  2. Recovery sweep ("recovery/<distance>m" rows, no vs_memcpy, so the
//     gate skips them): the paper's Figure-7 closed-loop story. Same fleet,
//     controller off vs on, at several distances along the calibrated
//     WaveLAN loss curve. Source of the EXPERIMENTS.md "Adaptive FEC at
//     scale" table.
//
// The headline run doubles as the CI determinism probe:
//
//   bench_sim_scale --headline-only --stats-out run1.txt
//   bench_sim_scale --headline-only --stats-out run2.txt
//   cmp run1.txt run2.txt          # must be byte-identical
//
// Flags (env fallback in parens): --stations N (RW_SIM_STATIONS),
// --seconds S of virtual time (RW_SIM_SECONDS), --seed X (RW_SIM_SEED),
// --mobile F, --stats-out PATH, --headline-only, --quick.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "sim/fleet.h"
#include "sim/virtual_clock.h"
#include "util/clock.h"

using namespace rapidware;

namespace {

double memcpy_ref_mbps() {
  // Same normalization reference as bench_stream_throughput: single-thread
  // 64 KiB memcpy, best of 5.
  constexpr std::size_t kChunk = 65536;
  constexpr int kChunks = 4096;
  std::vector<std::uint8_t> src(kChunk, 0xaa), dst(kChunk, 0);
  volatile std::uint8_t guard = 0;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunks; ++i) {
      std::copy(src.begin(), src.end(), dst.begin());
      guard = guard + dst[kChunk - 1];
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, kChunk * static_cast<double>(kChunks) / secs / 1e6);
  }
  return best;
}

struct RunResult {
  double wall_s = 0.0;
  double station_vsec_per_s = 0.0;  // stations * virtual seconds / wall sec
  double received = 0.0;
  double raw_loss = 0.0;
  double overhead = 1.0;
  std::uint64_t inserts = 0;
  std::uint64_t removes = 0;
  std::string stats;  // filled only when capture_stats
};

RunResult run_fleet(const sim::FleetConfig& config, double virtual_s,
                    bool capture_stats) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::VirtualClock clock;
  sim::FleetSim fleet(clock, config);
  fleet.run_for(util::seconds_to_micros(virtual_s));
  RunResult r;
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.station_vsec_per_s =
      static_cast<double>(config.stations) * virtual_s / r.wall_s;
  r.received = fleet.received_rate();
  r.raw_loss = fleet.raw_loss_rate();
  r.overhead = fleet.fec_overhead();
  r.inserts = fleet.inserts();
  r.removes = fleet.removes();
  if (capture_stats) r.stats = fleet.stats_text();
  return r;
}

long env_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtol(v, nullptr, 0) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t stations = static_cast<std::size_t>(env_or("RW_SIM_STATIONS",
                                                         10'000));
  double virtual_s = static_cast<double>(env_or("RW_SIM_SECONDS", 3'600));
  std::uint64_t seed =
      static_cast<std::uint64_t>(env_or("RW_SIM_SEED", 0x5eedf1ee));
  double mobile = 0.25;
  std::string stats_out;
  bool headline_only = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--stations" && next) {
      stations = std::strtoul(argv[++i], nullptr, 0);
    } else if (arg == "--seconds" && next) {
      virtual_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--seed" && next) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--mobile" && next) {
      mobile = std::strtod(argv[++i], nullptr);
    } else if (arg == "--stats-out" && next) {
      stats_out = argv[++i];
    } else if (arg == "--headline-only") {
      headline_only = true;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--stations N] [--seconds S] [--seed X] "
                   "[--mobile F] [--stats-out PATH] [--headline-only] "
                   "[--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("=== Fleet-scale adaptive-FEC simulation ===\n\n");

  sim::FleetConfig headline;
  headline.stations = stations;
  headline.seed = seed;
  headline.mobile_fraction = mobile;

  std::printf("headline: %zu stations x %.0f virtual s (seed 0x%llx, "
              "mobile %.2f)\n",
              stations, virtual_s,
              static_cast<unsigned long long>(seed), mobile);
  const RunResult head = run_fleet(headline, virtual_s, !stats_out.empty());
  std::printf("  wall %.2f s  |  %.3g station*vsec/s  |  received %.4f%%  |"
              "  raw loss %.2f%%  |  overhead %.3fx\n\n",
              head.wall_s, head.station_vsec_per_s, 100.0 * head.received,
              100.0 * head.raw_loss, head.overhead);
  if (!stats_out.empty()) {
    std::FILE* f = std::fopen(stats_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", stats_out.c_str());
      return 1;
    }
    std::fwrite(head.stats.data(), 1, head.stats.size(), f);
    std::fclose(f);
    std::printf("stats snapshot: %s (%zu bytes)\n", stats_out.c_str(),
                head.stats.size());
  }
  if (headline_only) return 0;

  rwbench::JsonSummary json("sim_scale");
  const double memcpy_ref = memcpy_ref_mbps();
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);
  json.meta("seed", static_cast<unsigned long long>(seed));
  json.meta("headline_stations", static_cast<unsigned long long>(stations));
  json.meta("headline_virtual_s", virtual_s);
  json.meta("headline_station_vsec_per_s", head.station_vsec_per_s);

  // --- Perf rows: fixed shapes so the baseline names stay stable ----------
  std::printf("--- Simulation throughput (controller on, mobile 0.25) ---\n");
  std::printf("%-14s %14s %12s %10s\n", "stations", "station*vsec/s",
              "vs_memcpy", "wall s");
  const int scale_reps = quick ? 1 : 3;
  for (const std::size_t n : {std::size_t{1'000}, std::size_t{10'000}}) {
    sim::FleetConfig cfg;
    cfg.stations = n;
    cfg.mobile_fraction = 0.25;
    const double vs = quick ? 30.0 : 120.0;
    double best = 0.0, wall = 0.0;
    for (int rep = 0; rep < scale_reps; ++rep) {
      const RunResult r = run_fleet(cfg, vs, false);
      if (r.station_vsec_per_s > best) {
        best = r.station_vsec_per_s;
        wall = r.wall_s;
      }
    }
    const double ratio = best / memcpy_ref;
    std::printf("%-14zu %14.3g %12.4f %10.2f\n", n, best, ratio, wall);
    json.row({{"name", "scale/" + std::to_string(n)},
              {"station_vsec_per_s", best},
              {"vs_memcpy", ratio},
              {"wall_s", wall}});
  }

  // --- Recovery sweep: controller off vs on along the WaveLAN curve -------
  // Informational rows (no vs_memcpy): the EXPERIMENTS.md table source.
  std::printf("\n--- Recovery: controller off vs on (static fleet) ---\n");
  std::printf("%-10s %10s %12s %12s %10s %8s\n", "distance", "raw loss",
              "recv (off)", "recv (on)", "overhead", "inserts");
  const std::size_t sweep_stations = quick ? 10 : 40;
  const double sweep_s = quick ? 60.0 : 300.0;
  for (const double dist : {25.0, 28.0, 30.0, 33.0, 35.0}) {
    sim::FleetConfig cfg;
    cfg.stations = sweep_stations;
    cfg.seed = seed ^ 0xd15ULL;
    cfg.base_distance_m = dist;
    cfg.mobile_fraction = 0.0;
    cfg.controller_enabled = false;
    const RunResult off = run_fleet(cfg, sweep_s, false);
    cfg.controller_enabled = true;
    const RunResult on = run_fleet(cfg, sweep_s, false);
    std::printf("%-10.0f %9.2f%% %11.4f%% %11.4f%% %9.3fx %8llu\n", dist,
                100.0 * off.raw_loss, 100.0 * off.received,
                100.0 * on.received, on.overhead,
                static_cast<unsigned long long>(on.inserts));
    char name[32];
    std::snprintf(name, sizeof name, "recovery/%.0fm", dist);
    json.row({{"name", std::string(name)},
              {"raw_loss", off.raw_loss},
              {"received_off", off.received},
              {"received_on", on.received},
              {"fec_overhead", on.overhead},
              {"inserts", static_cast<unsigned long long>(on.inserts)}});
  }

  std::printf("\n");
  json.write();
  return 0;
}
