// Flow classification hot path: resolve + dispatch cost per flow, and the
// flyweight sharing contract at acceptance scale.
//
// Scenario: a proxy serving kFlows concurrent flows from a kRules-entry
// rule table (banded station ranges, so first-match scans ~kRules/2 rules).
// Three measured paths:
//
//   resolve/cold   — first packet of a new flow: full rule scan + spec-table
//                    intern hit + flow-map insert (the FlowTable::acquire
//                    shape minus chain construction).
//   resolve/rehit  — re-resolution of a known key (what reresolve() does per
//                    flow after a RULE_ADD).
//   dispatch/warm  — steady-state packet dispatch: flow-map find + touching
//                    the flow's interned spec.
//
// Contracts asserted by the binary itself (exit 1 on violation, so the CI
// step fails even before the baseline gate runs):
//   * kFlows flows resolved from kRules rules share <= kRules ChainSpec
//     objects, by pointer identity.
//   * resolve + dispatch stays under 1 us per flow.
//
// vs_memcpy (rows): flows/s divided by the same run's 64 KiB memcpy MB/s —
// the machine-independent ratio gated by tools/bench_compare.py against
// bench/baselines/flow_resolve_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/flow_classifier.h"

using namespace rapidware;

namespace {

constexpr std::uint32_t kRules = 16;
constexpr std::uint32_t kFlows = 10'000;

double memcpy_ref_mbps() {
  // Same normalization reference as the other data-plane benches:
  // single-thread 64 KiB memcpy, best of 5.
  constexpr std::size_t kChunk = 65536;
  constexpr int kChunks = 4096;
  std::vector<std::uint8_t> src(kChunk, 0xaa), dst(kChunk, 0);
  volatile std::uint8_t guard = 0;
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunks; ++i) {
      std::copy(src.begin(), src.end(), dst.begin());
      guard = guard + dst[kChunk - 1];
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, kChunk * static_cast<double>(kChunks) / secs / 1e6);
  }
  return best;
}

void populate_rules(core::FlowClassifier& clf) {
  for (std::uint32_t r = 0; r < kRules; ++r) {
    core::FlowRule rule;
    rule.name = "band-" + std::to_string(r);
    rule.priority = 10 + r;
    rule.station_lo = r * (kFlows / kRules);
    rule.station_hi = (r + 1) * (kFlows / kRules) - 1;
    rule.chain.name = "chain-" + std::to_string(r);
    rule.chain.stages = {
        {"fec-encode", {{"n", std::to_string(4 + r % 8)}, {"k", "4"}}}};
    clf.add_rule(std::move(rule));
  }
}

core::FlowKey key_of(std::uint32_t f) {
  return {f, "audio",
          static_cast<core::LossRegime>(f % 3)};
}

double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Flow resolve + dispatch (%u flows, %u rules) ===\n\n",
              kFlows, kRules);

  core::FilterSpecTable table;
  core::FlowClassifier clf(&table);
  populate_rules(clf);

  rwbench::JsonSummary json("flow_resolve");
  const double memcpy_ref = memcpy_ref_mbps();
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);
  json.meta("flows", static_cast<unsigned long long>(kFlows));
  json.meta("rules", static_cast<unsigned long long>(kRules));

  // --- resolve/cold: first packet of every flow --------------------------
  // Best of 3 sweeps; each sweep rebuilds the flow map from scratch (the
  // classifier and spec table stay warm, as in a long-lived proxy).
  std::map<core::FlowKey, core::ChainSpecRef> flow_map;
  double cold_best = 0.0;  // flows per second
  for (int rep = 0; rep < 3; ++rep) {
    flow_map.clear();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      const core::FlowKey key = key_of(f);
      flow_map.emplace(key, clf.resolve(key));
    }
    cold_best = std::max(cold_best, kFlows / secs_since(t0));
  }
  const double cold_ns = 1e9 / cold_best;

  // Flyweight contract: all flows share the rules' interned specs.
  std::set<const core::ChainSpec*> distinct;
  for (const auto& [key, spec] : flow_map) distinct.insert(spec.get());
  std::printf("flyweight: %zu flows -> %zu distinct ChainSpec objects "
              "(table holds %zu)\n",
              flow_map.size(), distinct.size(), table.size());
  if (distinct.size() > kRules || table.size() > kRules + 1) {
    std::fprintf(stderr,
                 "FAIL: flyweight sharing broken: %zu spec objects from %u "
                 "rules\n",
                 distinct.size(), kRules);
    return 1;
  }

  // --- resolve/rehit: re-resolve every live flow (the reresolve() scan) --
  double rehit_best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      auto spec = clf.resolve(key_of(f));
      if (!spec) return 1;
    }
    rehit_best = std::max(rehit_best, kFlows / secs_since(t0));
  }
  const double rehit_ns = 1e9 / rehit_best;

  // --- dispatch/warm: per-packet flow-map hit ----------------------------
  constexpr std::uint32_t kPackets = 200'000;
  double warm_best = 0.0;
  volatile std::size_t sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t p = 0; p < kPackets; ++p) {
      const auto it = flow_map.find(key_of(p % kFlows));
      sink = sink + it->second->stages.size();
    }
    warm_best = std::max(warm_best, kPackets / secs_since(t0));
  }
  const double warm_ns = 1e9 / warm_best;

  std::printf("\n%-16s %14s %12s %12s\n", "path", "flows/s", "ns/flow",
              "vs_memcpy");
  const auto emit = [&](const std::string& name, double per_s, double ns) {
    const double ratio = per_s / memcpy_ref;
    std::printf("%-16s %14.3g %12.1f %12.2f\n", name.c_str(), per_s, ns,
                ratio);
    json.row({{"name", name},
              {"flows_per_s", per_s},
              {"ns_per_flow", ns},
              {"vs_memcpy", ratio}});
  };
  emit("resolve/cold", cold_best, cold_ns);
  emit("resolve/rehit", rehit_best, rehit_ns);
  emit("dispatch/warm", warm_best, warm_ns);

  // The acceptance bound: resolving a new flow AND dispatching a packet to
  // it both fit inside a microsecond.
  const double resolve_plus_dispatch_ns = cold_ns + warm_ns;
  std::printf("\nresolve+dispatch: %.1f ns/flow (bound: 1000 ns)\n",
              resolve_plus_dispatch_ns);
  json.meta("resolve_plus_dispatch_ns", resolve_plus_dispatch_ns);
  json.meta("intern_hits", static_cast<unsigned long long>(table.hits()));
  json.meta("intern_misses", static_cast<unsigned long long>(table.misses()));
  if (resolve_plus_dispatch_ns >= 1000.0) {
    std::fprintf(stderr, "FAIL: resolve+dispatch %.1f ns >= 1 us per flow\n",
                 resolve_plus_dispatch_ns);
    return 1;
  }

  std::printf("\n");
  json.write();
  return 0;
}
