// Erasure-codec microbenchmarks: GF(2^8) kernels and Reed-Solomon
// encode/decode throughput across the (n, k) design space — establishing
// that software FEC (Rizzo [20]) is cheap enough to run inline in a proxy.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "fec/fec_group.h"
#include "fec/gf256.h"
#include "fec/gf256_kernels.h"
#include "fec/rs_code.h"
#include "util/rng.h"

using namespace rapidware;
using util::Bytes;

namespace {

void BM_GfMulAdd(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  Bytes src(len), dst(len);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    fec::gf::mul_add(dst, src, 0x1d);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulAdd)->Arg(320)->Arg(1500)->Arg(65536);

std::vector<Bytes> make_source(std::size_t k, std::size_t len,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Bytes> source(k, Bytes(len));
  for (auto& s : source) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_u64());
  }
  return source;
}

void BM_RsEncode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::size_t len = 1500;  // wire-MTU-sized symbols
  fec::ReedSolomonCode code(n, k);
  const auto source = make_source(k, len, 2);
  for (auto _ : state) {
    auto parity = code.encode(source);
    benchmark::DoNotOptimize(parity.data());
  }
  // Encoding throughput counts source bytes protected per second.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}
BENCHMARK(BM_RsEncode)
    ->Args({6, 4})
    ->Args({8, 4})
    ->Args({12, 8})
    ->Args({24, 16})
    ->Args({48, 32})
    ->Args({255, 223});

void BM_RsDecodeWorstCase(benchmark::State& state) {
  // Worst case: all n-k data losses; every output symbol is synthesized.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::size_t len = 1500;
  fec::ReedSolomonCode code(n, k);
  const auto source = make_source(k, len, 3);
  const auto parity = code.encode(source);

  std::vector<std::optional<Bytes>> received(n);
  const std::size_t losses = n - k;
  for (std::size_t i = losses; i < k; ++i) received[i] = source[i];
  for (std::size_t p = 0; p < parity.size(); ++p) received[k + p] = parity[p];

  for (auto _ : state) {
    auto decoded = code.decode(received);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * len));
}
BENCHMARK(BM_RsDecodeWorstCase)
    ->Args({6, 4})
    ->Args({8, 4})
    ->Args({12, 8})
    ->Args({24, 16})
    ->Args({48, 32});

void BM_GroupEncoderPipeline(benchmark::State& state) {
  // The full per-packet path the proxy filter runs: header + symbol
  // framing + cached-code encode, amortized over a (6,4) stream.
  fec::GroupEncoder encoder(6, 4);
  util::Rng rng(4);
  Bytes payload(320);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  std::int64_t packets = 0;
  for (auto _ : state) {
    auto wire = encoder.add(payload);
    benchmark::DoNotOptimize(wire.data());
    ++packets;
  }
  state.SetBytesProcessed(packets * 320);
}
BENCHMARK(BM_GroupEncoderPipeline);

void BM_GroupDecoderPipeline(benchmark::State& state) {
  // Decode path with one erased data packet per group.
  fec::GroupEncoder encoder(6, 4);
  util::Rng rng(5);
  std::vector<Bytes> wire_groups;
  Bytes payload(320);
  for (int i = 0; i < 64; ++i) {
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& w : encoder.add(payload)) wire_groups.push_back(std::move(w));
  }
  // Low restart threshold: replaying the recorded groups wraps the id
  // sequence, which the decoder treats as a stream restart.
  fec::GroupDecoder decoder(4, /*restart_threshold=*/8);
  std::size_t cursor = 0;
  std::int64_t data_bytes = 0;
  for (auto _ : state) {
    const Bytes& w = wire_groups[cursor];
    cursor = (cursor + 1) % wire_groups.size();
    if (cursor % 6 == 1) continue;  // erase data packet index 1 per group
    auto out = decoder.add(w);
    for (const auto& p : out) data_bytes += static_cast<std::int64_t>(p.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(data_bytes);
}
BENCHMARK(BM_GroupDecoderPipeline);

// ---------------------------------------------------------------------------
// Per-backend kernel series, registered dynamically for every backend this
// host can run (tools/bench_compare.py consumes the resulting
// BENCH_rs_codec.json series; RW_GF_BACKEND additionally forces what the
// static benchmarks above dispatch to).

void run_gf_mul_add_backend(benchmark::State& state, const fec::gf::Kernels* k,
                            std::size_t len) {
  util::Rng rng(1);
  Bytes src(len), dst(len);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    k->mul_add(dst, src, 0x1d);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void run_rs_encode_backend(benchmark::State& state, fec::gf::Backend b) {
  // The tentpole's headline configuration: (n=12, k=8), 1 KiB symbols.
  const fec::gf::Backend previous = fec::gf::active_kernels().backend;
  fec::gf::set_active_backend(b);
  fec::ReedSolomonCode code(12, 8);
  const auto source = make_source(8, 1024, 2);
  for (auto _ : state) {
    auto parity = code.encode(source);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(8 * 1024));
  fec::gf::set_active_backend(previous);
}

void register_backend_series() {
  for (const auto b : fec::gf::supported_backends()) {
    const fec::gf::Kernels* k = fec::gf::kernels_for(b);
    for (const std::size_t len : {320u, 1500u, 65536u}) {
      benchmark::RegisterBenchmark(
          ("BM_GfMulAddBackend/" + std::string(k->name) + "/" +
           std::to_string(len))
              .c_str(),
          [k, len](benchmark::State& st) { run_gf_mul_add_backend(st, k, len); });
    }
    benchmark::RegisterBenchmark(
        ("BM_RsEncodeBackend/" + std::string(k->name) + "/12/8/1024").c_str(),
        [b](benchmark::State& st) { run_rs_encode_backend(st, b); });
  }
}

}  // namespace

// Custom main: console output for humans plus google-benchmark's own JSON
// schema (not the rwbench one) in BENCH_rs_codec.json, unless the caller
// already chose a --benchmark_out destination.
int main(int argc, char** argv) {
  const char* json_path = "BENCH_rs_codec.json";
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = std::string("--benchmark_out=") + json_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  register_backend_series();
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("json summary: %s\n", json_path);
  return 0;
}
