// Reliable multicast repair traffic: ARQ vs parity repair vs receiver count.
//
// Section 5: "The advantage of using block erasure codes for multicasting
// is that a single parity packet can be used to correct independent
// single-packet losses among different receivers." This bench quantifies
// that claim: R receivers suffer independent random loss; the sender
// repairs via per-packet retransmission (ARQ) or aggregated parity. Repair
// traffic per mode is the result — ARQ grows with the union of losses
// across receivers, parity with the worst single receiver.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "net/loss.h"
#include "reliable/reliable_multicast.h"
#include "util/stats.h"

using namespace rapidware;
using namespace rapidware::reliable;

namespace {

struct Outcome {
  std::uint64_t data_packets;
  std::uint64_t repair_packets;
  std::uint64_t nacks;
  int rounds;
  bool complete;
};

Outcome run(RepairMode mode, int receivers, double loss, std::uint64_t seed) {
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, seed);
  const auto sender_node = net.add_node("sender");
  const net::Address group = net::multicast_group(1, 6000);
  auto sender_socket = net.open(sender_node, 6001);

  struct Rx {
    std::shared_ptr<net::SimSocket> socket;
    std::unique_ptr<ReliableMulticastReceiver> receiver;
  };
  std::vector<Rx> rxs;
  for (int i = 0; i < receivers; ++i) {
    const auto node = net.add_node("rx" + std::to_string(i));
    net::ChannelConfig config;
    config.loss = std::make_shared<net::BernoulliLoss>(loss);
    net.set_channel(sender_node, node, std::move(config));
    Rx rx;
    rx.socket = net.open(node, 6000);
    rx.receiver = std::make_unique<ReliableMulticastReceiver>(
        rx.socket, sender_socket->local(), group, *clock);
    rxs.push_back(std::move(rx));
  }

  ReliableMulticastSender sender(sender_socket, group, 8, mode);
  constexpr int kPayloads = 800;  // 100 blocks
  const std::uint32_t last_block = kPayloads / 8 - 1;
  util::Bytes payload(200, 0x42);
  for (int i = 0; i < kPayloads; ++i) sender.send(payload);

  Outcome outcome{};
  for (outcome.rounds = 0; outcome.rounds < 400; ++outcome.rounds) {
    bool all_done = true;
    for (auto& rx : rxs) {
      rx.receiver->poll();
      rx.receiver->tick();
      all_done &= rx.receiver->complete_through(last_block);
    }
    sender.service();
    clock->advance(100'000);
    if (all_done) break;
  }
  bool all_done = true;
  for (auto& rx : rxs) all_done &= rx.receiver->complete_through(last_block);
  std::uint64_t nacks = 0;
  for (auto& rx : rxs) nacks += rx.receiver->stats().nacks_sent;

  outcome.data_packets = sender.stats().data_packets;
  outcome.repair_packets = sender.stats().repair_packets();
  outcome.nacks = nacks;
  outcome.complete = all_done;
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Reliable multicast: repair traffic, ARQ vs parity ===\n");
  std::printf("(100 blocks of k=8, 200 B payloads, independent loss per "
              "receiver)\n\n");
  std::printf("%8s %6s %10s | %14s %10s | %14s %10s | %8s\n", "loss", "rxs",
              "data pkts", "ARQ repairs", "overhead", "parity repairs",
              "overhead", "ratio");
  rwbench::JsonSummary json("reliable_repair");
  json.meta("blocks", 100);
  json.meta("block_k", 8);
  json.meta("payload_bytes", 200);
  for (const double loss : {0.02, 0.05, 0.15}) {
    for (const int receivers : {1, 4, 16}) {
      const Outcome arq = run(RepairMode::kArq, receivers, loss, 1000);
      const Outcome parity = run(RepairMode::kParity, receivers, loss, 1000);
      if (!arq.complete || !parity.complete) {
        std::printf("  (did not converge: loss %.2f rxs %d)\n", loss,
                    receivers);
        continue;
      }
      json.row({{"loss", loss},
                {"receivers", receivers},
                {"data_packets", arq.data_packets},
                {"arq_repair_packets", arq.repair_packets},
                {"parity_repair_packets", parity.repair_packets},
                {"arq_nacks", arq.nacks},
                {"parity_nacks", parity.nacks}});
      std::printf(
          "%7.0f%% %6d %10llu | %14llu %9.1f%% | %14llu %9.1f%% | %7.2fx\n",
          loss * 100, receivers,
          static_cast<unsigned long long>(arq.data_packets),
          static_cast<unsigned long long>(arq.repair_packets),
          100.0 * static_cast<double>(arq.repair_packets) /
              static_cast<double>(arq.data_packets),
          static_cast<unsigned long long>(parity.repair_packets),
          100.0 * static_cast<double>(parity.repair_packets) /
              static_cast<double>(parity.data_packets),
          static_cast<double>(arq.repair_packets) /
              std::max<std::uint64_t>(1, parity.repair_packets));
    }
  }
  json.write();
  std::printf(
      "\nshape check: with one receiver the modes are comparable; as the\n"
      "receiver set grows, ARQ repairs track the UNION of losses while\n"
      "aggregated parity tracks the WORST receiver — the paper's multicast\n"
      "FEC advantage, growing with receiver count and loss rate.\n");
  return 0;
}
