// Figure 7 reproduction: "Trace data for FEC(6,4) audio FEC".
//
// Paper setup (Section 5): PCM audio recorded at 8000 samples/s, two 8-bit
// channels, streamed through a proxy that inserts FEC(6,4) ("small groups
// so as to minimize jitter") and multicast over a 2 Mbps WaveLAN to a
// receiver 25 m from the access point. The paper plots, per 432-packet
// sequence window, the percentage of packets received raw off the air and
// the percentage available after FEC reconstruction:
//
//     paper:   % received      = 98.54%,  % reconstructed = 99.98%
//
// This harness regenerates both series over the same trace length and
// prints the same two summary numbers.
#include <cstdio>
#include <thread>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "filters/fec_filters.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

int main() {
  std::printf("=== Figure 7: raw vs reconstructed receipt, FEC(6,4), 25 m ===\n\n");

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 1946);
  const auto sender_node = net.add_node("wired-sender");
  const auto proxy_node = net.add_node("proxy");
  const auto mobile_node = net.add_node("mobile");

  wireless::WirelessLan wlan(net, proxy_node);  // 2 Mbps WaveLAN model
  wlan.add_station(mobile_node, 25.0);

  proxy::ProxyConfig config;
  config.ingress_port = 4000;
  config.egress_dst = {mobile_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();
  proxy.chain().insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);

  auto rx = net.open(mobile_node, 5000);
  media::ReceiverLog raw_log(432);  // the paper bins by 432 sequence numbers
  media::ReceiverLog fec_log(432);
  fec::GroupDecoder decoder(4);

  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      util::Reader hr(d->payload);
      const auto header = fec::GroupHeader::decode_from(hr);
      if (!header.is_parity()) {
        raw_log.on_packet(media::MediaPacket::parse(hr.raw(hr.remaining())),
                          d->deliver_at);
      }
      for (const auto& payload : decoder.add(d->payload)) {
        fec_log.on_packet(media::MediaPacket::parse(payload), d->deliver_at);
      }
    }
    for (const auto& payload : decoder.flush()) {
      fec_log.on_packet(media::MediaPacket::parse(payload), 0);
    }
  });

  // The paper's trace spans sequence numbers up to ~5400 (12 ticks of 432).
  auto tx = net.open(sender_node);
  media::AudioSource audio;  // 8000 sps x 2 ch x 8 bit
  media::AudioPacketizer packetizer(audio, 20);
  constexpr int kPackets = 5400;
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
    clock->advance(packetizer.packet_duration_us());
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  proxy.shutdown();

  rwbench::JsonSummary json("fig7_fec_trace");
  json.meta("fec_n", 6);
  json.meta("fec_k", 4);
  json.meta("distance_m", 25.0);
  json.meta("packets", kPackets);
  std::printf("%-12s %12s %16s\n", "seq window", "% received",
              "% reconstructed");
  const auto raw_bins = raw_log.bins();
  const auto fec_bins = fec_log.bins();
  for (std::size_t i = 0; i < raw_bins.size() && i < fec_bins.size(); ++i) {
    std::printf("%-12u %12s %16s\n", raw_bins[i].first_seq,
                util::percent(raw_bins[i].rate).c_str(),
                util::percent(fec_bins[i].rate).c_str());
    json.row({{"first_seq", raw_bins[i].first_seq},
              {"received_rate", raw_bins[i].rate},
              {"reconstructed_rate", fec_bins[i].rate}});
  }
  json.meta("overall_received_rate", raw_log.delivery_rate());
  json.meta("overall_reconstructed_rate", fec_log.delivery_rate());
  json.meta("smoothed_jitter_us", fec_log.smoothed_jitter_us());
  json.write();
  std::printf("\n%-12s %12s %16s\n", "overall",
              util::percent(raw_log.delivery_rate()).c_str(),
              util::percent(fec_log.delivery_rate()).c_str());
  std::printf("%-12s %12s %16s\n", "paper", "98.54%", "99.98%");
  std::printf("\nsmoothed interarrival jitter: %.1f ms (group size kept small"
              " to bound it)\n",
              fec_log.smoothed_jitter_us() / 1000.0);
  return 0;
}
