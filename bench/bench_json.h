// Machine-readable bench output: every bench_* binary writes a
// BENCH_<name>.json summary next to its human-readable stdout tables, so CI
// can archive results and scripts can diff runs without scraping printf
// output. Schema (documented in docs/observability.md):
//
//   {
//     "bench": "<name>",            // binary name minus the bench_ prefix
//     "schema_version": 1,
//     "meta": { ... },              // run-wide facts (config, build flags)
//     "rows": [ { ... }, ... ]      // one object per table row
//   }
//
// Row/meta values are strings, numbers, or booleans. The one
// google-benchmark binary (bench_rs_codec) writes google-benchmark's own
// JSON schema instead, via benchmark::JSONReporter. tools/bench_compare.py
// understands both schemas and gates CI on the committed baselines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace rwbench {

/// One JSON scalar, stored pre-rendered.
class JsonValue {
 public:
  JsonValue(const char* s) : repr_(quote(s)) {}                    // NOLINT
  JsonValue(const std::string& s) : repr_(quote(s)) {}             // NOLINT
  JsonValue(double v) { repr_ = number(v); }                       // NOLINT
  JsonValue(int v) : repr_(std::to_string(v)) {}                   // NOLINT
  JsonValue(unsigned v) : repr_(std::to_string(v)) {}              // NOLINT
  JsonValue(long v) : repr_(std::to_string(v)) {}                  // NOLINT
  JsonValue(unsigned long v) : repr_(std::to_string(v)) {}         // NOLINT
  JsonValue(long long v) : repr_(std::to_string(v)) {}             // NOLINT
  JsonValue(unsigned long long v) : repr_(std::to_string(v)) {}    // NOLINT
  JsonValue(bool v) : repr_(v ? "true" : "false") {}               // NOLINT

  const std::string& repr() const { return repr_; }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    // JSON has no inf/nan; encode them as strings so parsers stay happy.
    const std::string s = buf;
    if (s.find_first_not_of("+-.0123456789eE") != std::string::npos) {
      return quote(s);
    }
    return s;
  }

  std::string repr_;
};

using JsonFields = std::vector<std::pair<std::string, JsonValue>>;

/// Accumulates meta fields and rows; writes BENCH_<name>.json on write()
/// (or from the destructor as a fallback).
class JsonSummary {
 public:
  explicit JsonSummary(std::string name) : name_(std::move(name)) {}

  ~JsonSummary() {
    if (!written_) write();
  }

  JsonSummary(const JsonSummary&) = delete;
  JsonSummary& operator=(const JsonSummary&) = delete;

  void meta(const std::string& key, JsonValue value) {
    meta_.emplace_back(key, std::move(value));
  }

  void row(JsonFields fields) { rows_.push_back(std::move(fields)); }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Serializes and writes the file; prints the path on success.
  void write() {
    written_ = true;
    const std::string out = render();
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path().c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("json summary: %s\n", path().c_str());
  }

  std::string render() const {
    std::string out = "{\n  \"bench\": " + JsonValue(name_).repr() +
                      ",\n  \"schema_version\": 1,\n  \"meta\": ";
    out += object(meta_, "  ");
    out += ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += (i == 0 ? "\n    " : ",\n    ");
      out += object(rows_[i], "    ");
    }
    out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
  }

 private:
  static std::string object(const JsonFields& fields,
                            const std::string& indent) {
    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out += (i == 0 ? "" : ", ");
      out += JsonValue(fields[i].first).repr() + ": " +
             fields[i].second.repr();
    }
    (void)indent;
    out += "}";
    return out;
  }

  std::string name_;
  JsonFields meta_;
  std::vector<JsonFields> rows_;
  bool written_ = false;
};

}  // namespace rwbench
