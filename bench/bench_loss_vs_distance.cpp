// Loss vs distance sweep — the paper's Section 3 claim that "packet loss
// rate can change dramatically over a distance of several meters" [16], and
// the basis for demand-driven FEC: the same walk that takes a user from her
// office to a conference room moves the link across the FEC-useful regime.
//
// For each distance: modeled loss, measured raw delivery, and delivery
// after FEC(6,4) — the distance axis of Figure 7's experiment.
#include <cstdio>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "net/loss.h"
#include "util/stats.h"
#include "wireless/path_loss.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

struct Point {
  double raw_rate;
  double fec_rate;
};

Point run_distance(double distance, int packets) {
  const wireless::WlanConfig wlan_defaults;
  const double loss = wlan_defaults.path_loss.loss_at(distance);
  auto channel = net::GilbertElliottLoss::with_average(
      loss, wlan_defaults.mean_burst_len, wlan_defaults.loss_in_bad);
  util::Rng rng(static_cast<std::uint64_t>(distance * 100));

  fec::GroupEncoder encoder(6, 4);
  fec::GroupDecoder decoder(4);
  util::RateCounter raw;
  std::size_t delivered = 0;
  for (int i = 0; i < packets; ++i) {
    util::Bytes payload(320, static_cast<std::uint8_t>(i));
    for (const auto& wire : encoder.add(payload)) {
      const bool dropped = channel->drop(rng);
      util::Reader hr(wire);
      if (!fec::GroupHeader::decode_from(hr).is_parity()) raw.add(!dropped);
      if (!dropped) delivered += decoder.add(wire).size();
    }
  }
  delivered += decoder.flush().size();
  return {raw.rate(), static_cast<double>(delivered) / packets};
}

}  // namespace

int main() {
  std::printf("=== Loss vs distance (2 Mbps WaveLAN model, FEC(6,4)) ===\n\n");
  std::printf("%8s %14s %12s %12s %12s\n", "dist(m)", "model loss",
              "raw rate", "fec rate", "fec gain");

  constexpr int kPackets = 40'000;
  rwbench::JsonSummary json("loss_vs_distance");
  json.meta("fec_n", 6);
  json.meta("fec_k", 4);
  json.meta("packets_per_distance", kPackets);
  const wireless::PathLossModel model = wireless::wavelan_model();
  for (const double d : {5.0, 10.0, 15.0, 20.0, 25.0, 28.0, 30.0, 32.0, 35.0,
                         38.0, 40.0, 45.0}) {
    const Point p = run_distance(d, kPackets);
    const double gain =
        (1.0 - p.raw_rate) / std::max(1e-9, 1.0 - p.fec_rate);
    char gain_str[24];
    if (gain > 1000.0) {
      std::snprintf(gain_str, sizeof(gain_str), "   >1000x");
    } else {
      std::snprintf(gain_str, sizeof(gain_str), "%8.2fx", gain);
    }
    std::printf("%8.0f %14s %12s %12s %12s\n", d,
                util::percent(model.loss_at(d)).c_str(),
                util::percent(p.raw_rate).c_str(),
                util::percent(p.fec_rate).c_str(), gain_str);
    json.row({{"distance_m", d},
              {"model_loss", model.loss_at(d)},
              {"raw_rate", p.raw_rate},
              {"fec_rate", p.fec_rate},
              {"fec_gain", gain}});
  }
  json.write();

  std::printf(
      "\nshape check: loss grows ~e^(d/7.4m); between 30 m and 40 m the rate"
      "\nchanges %.1fx — the 'dramatic change over several meters' of "
      "Section 3.\n",
      model.loss_at(40.0) / model.loss_at(30.0));
  return 0;
}
