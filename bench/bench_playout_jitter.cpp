// End-to-end latency analysis — WHY the paper "uses small groups so as to
// minimize jitter" (Section 5), quantified.
//
// Interactive audio has an end-to-end budget: a packet generated at time t
// must be playable by t + budget. Block FEC charges that budget twice —
// the encoder holds data until its group fills (up to (k-1) packet times),
// and a lost packet is recovered only when the group completes. We stream
// 20 ms audio packets through equal-overhead codes over the 25 m WLAN
// model, record when each packet becomes AVAILABLE (raw arrival or
// recovery), and report the fraction playable within several end-to-end
// budgets plus the p99 availability latency.
#include <cstdio>

#include "bench_json.h"
#include "fec/fec_group.h"
#include "media/playout.h"
#include "net/loss.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

struct CodeChoice {
  std::size_t n, k;  // k == 0 means "no FEC"
};

struct Outcome {
  std::vector<double> playable;  // per end-to-end budget
  util::Micros p99_latency_us;
  double delivered;
};

constexpr util::Micros kPacketUs = 20'000;
const std::vector<util::Micros> kBudgets = {100'000, 200'000, 400'000,
                                            800'000};

Outcome run(CodeChoice code, int packets, std::uint64_t seed) {
  const wireless::WlanConfig wlan_defaults;
  const double loss_rate = wlan_defaults.path_loss.loss_at(25.0);
  auto channel = net::GilbertElliottLoss::with_average(
      loss_rate, wlan_defaults.mean_burst_len, wlan_defaults.loss_in_bad);
  util::Rng rng(seed);

  // Availability time per media seq, fed to playout buffers afterwards.
  std::map<std::uint32_t, util::Micros> available;
  auto offer = [&](std::uint32_t seq, util::Micros at) {
    auto [it, inserted] = available.try_emplace(seq, at);
    if (!inserted) it->second = std::min(it->second, at);
  };

  std::unique_ptr<fec::GroupEncoder> encoder;
  fec::GroupDecoder decoder(4);
  if (code.k != 0) {
    encoder = std::make_unique<fec::GroupEncoder>(code.n, code.k);
  }

  for (int m = 0; m < packets; ++m) {
    const util::Micros media_time = static_cast<util::Micros>(m) * kPacketUs;
    util::Writer w;
    w.u32(static_cast<std::uint32_t>(m));
    w.raw(util::Bytes(320, static_cast<std::uint8_t>(m)));

    auto transmit = [&](const util::Bytes& wire, bool fec_framed) {
      if (channel->drop(rng)) return;
      // The whole group transmits when it completes (media_time of its
      // last packet — the encoder held the earlier ones), plus one-hop
      // latency and jitter.
      const util::Micros arrival =
          media_time + wlan_defaults.base_latency_us +
          static_cast<util::Micros>(
              rng.next_below(static_cast<std::uint64_t>(
                  wlan_defaults.jitter_us + 1)));
      if (!fec_framed) {
        util::Reader r(wire);
        offer(r.u32(), arrival);
        return;
      }
      for (const auto& payload : decoder.add(wire)) {
        util::Reader r(payload);
        offer(r.u32(), arrival);
      }
    };

    if (encoder) {
      for (const auto& wire : encoder->add(w.bytes())) transmit(wire, true);
    } else {
      transmit(w.bytes(), false);
    }
  }

  // End-to-end availability latency per media packet.
  std::vector<util::Micros> latencies;
  latencies.reserve(available.size());
  for (const auto& [seq, at] : available) {
    latencies.push_back(at - static_cast<util::Micros>(seq) * kPacketUs);
  }
  std::sort(latencies.begin(), latencies.end());

  Outcome outcome;
  outcome.delivered = static_cast<double>(available.size()) / packets;
  for (const util::Micros budget : kBudgets) {
    const auto playable = std::upper_bound(latencies.begin(), latencies.end(),
                                           budget) -
                          latencies.begin();
    outcome.playable.push_back(static_cast<double>(playable) / packets);
  }
  outcome.p99_latency_us =
      latencies.empty()
          ? 0
          : latencies[static_cast<std::size_t>(
                0.99 * static_cast<double>(latencies.size() - 1))];
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== End-to-end playability vs FEC group size (25 m) ===\n");
  std::printf("(equal 1.5x overhead; playable within an end-to-end budget)\n\n");
  std::printf("%10s %10s |", "code", "hold pkts");
  for (const auto b : kBudgets) {
    std::printf("  @%3lld ms", static_cast<long long>(b / 1000));
  }
  std::printf(" | %12s %10s\n", "p99 latency", "delivered");

  const CodeChoice codes[] = {{0, 0}, {6, 4}, {12, 8}, {24, 16}, {48, 32}};
  constexpr int kPackets = 20'000;
  rwbench::JsonSummary json("playout_jitter");
  json.meta("distance_m", 25.0);
  json.meta("packets", kPackets);
  for (const auto code : codes) {
    const Outcome o = run(code, kPackets, 99);
    if (code.k == 0) {
      std::printf("%10s %10s |", "no FEC", "-");
    } else {
      char name[16];
      std::snprintf(name, sizeof(name), "(%zu,%zu)", code.n, code.k);
      std::printf("%10s %9zu |", name, code.k - 1);
    }
    for (const double rate : o.playable) {
      std::printf(" %7.2f%%", rate * 100.0);
    }
    std::printf(" | %9.0f ms %10s\n",
                static_cast<double>(o.p99_latency_us) / 1000.0,
                util::percent(o.delivered).c_str());
    rwbench::JsonFields fields = {{"n", code.n},
                                  {"k", code.k},
                                  {"p99_latency_us", o.p99_latency_us},
                                  {"delivered", o.delivered}};
    for (std::size_t i = 0; i < kBudgets.size(); ++i) {
      fields.emplace_back(
          "playable_at_" + std::to_string(kBudgets[i] / 1000) + "ms",
          o.playable[i]);
    }
    json.row(fields);
  }
  json.write();
  std::printf("\n(column 2: packets of sender-side group-assembly latency)\n");
  std::printf(
      "\nshape check: every code delivers ~100%%, but availability latency\n"
      "grows with k: small groups fit a 100-200 ms interactive budget while\n"
      "large ones blow through it — the jitter argument behind the paper's\n"
      "(6,4) choice.\n");
  return 0;
}
