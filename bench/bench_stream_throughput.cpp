// Microbenchmarks of the detachable-stream data plane: what the
// pause/reconnect capability costs relative to the machine's own memory
// bandwidth. Every throughput row is normalized against a same-run memcpy
// baseline ("vs_memcpy"), so the committed baseline JSON compares across
// machines: "framed transport used to run at 0.7x memcpy on whatever host
// produced the baseline, now it is 0.4x" is a code regression no matter the
// hardware (tools/bench_compare.py --rwbench enforces this in CI).
//
// Rows:
//   * memcpy              — the floor: move bytes with no concurrency
//   * raw_pipe            — one writer thread + one reader thread (read_some)
//   * framed_legacy       — length-prefix codec, one read_frame() per frame
//   * framed_batched      — util::FrameReader, many frames per lock trip
//   * framed_wbatch8      — 8 frames per write_vec transaction + FrameReader
//   * pause_reconnect     — the control-plane primitive by itself
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/detachable_stream.h"
#include "obs/metrics.h"
#include "util/frame_reader.h"
#include "util/framing.h"

using namespace rapidware;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Runs `body` (which moves `total_bytes`) `reps` times; returns the best
/// MB/s. Best-of-N because on a contended CI host the fastest run is the
/// one least distorted by scheduling noise.
template <typename Body>
double best_mbps(int reps, double total_bytes, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    best = std::max(best, total_bytes / secs_since(t0) / 1e6);
  }
  return best;
}

double bench_memcpy(std::size_t chunk, std::int64_t total_chunks, int reps) {
  util::Bytes src(chunk, 0xaa), dst(chunk, 0);
  volatile std::uint8_t guard = 0;
  const double total =
      static_cast<double>(chunk) * static_cast<double>(total_chunks);
  return best_mbps(reps, total, [&] {
    for (std::int64_t i = 0; i < total_chunks; ++i) {
      std::memcpy(dst.data(), src.data(), chunk);
      guard = guard + dst[chunk - 1];
    }
  });
}

double bench_raw_pipe(std::size_t chunk, std::int64_t total_chunks, int reps) {
  const double total =
      static_cast<double>(chunk) * static_cast<double>(total_chunks);
  return best_mbps(reps, total, [&] {
    core::DetachableInputStream dis;
    core::DetachableOutputStream dos;
    core::connect(dos, dis);
    std::thread writer([&] {
      util::Bytes data(chunk, 0x5a);
      for (std::int64_t i = 0; i < total_chunks; ++i) dos.write(data);
      dos.close();
    });
    util::Bytes buf(chunk);
    while (dis.read_some(buf) != 0) {
    }
    writer.join();
  });
}

enum class Reader { kLegacy, kBatched };

/// Framed transport: `batch` frames per writer transaction (batch == 1 is
/// one write_frame call per frame; batch > 1 packs [header, payload] pairs
/// into a single write_vec, which the stream commits atomically).
double bench_framed(std::size_t payload, std::int64_t total_frames,
                    std::size_t batch, Reader reader, int reps,
                    double* batching_factor = nullptr) {
  const double total =
      static_cast<double>(payload) * static_cast<double>(total_frames);
  return best_mbps(reps, total, [&] {
    core::DetachableInputStream dis;
    core::DetachableOutputStream dos;
    core::connect(dos, dis);
    std::thread writer([&] {
      util::Bytes data(payload, 0x5a);
      if (batch <= 1) {
        for (std::int64_t i = 0; i < total_frames; ++i) {
          util::write_frame(dos, data);
        }
      } else {
        std::uint8_t header[util::kFrameHeaderSize];
        header[0] = static_cast<std::uint8_t>(util::kFrameMagic & 0xff);
        header[1] = static_cast<std::uint8_t>(util::kFrameMagic >> 8);
        const auto len = static_cast<std::uint32_t>(payload);
        header[2] = static_cast<std::uint8_t>(len & 0xff);
        header[3] = static_cast<std::uint8_t>((len >> 8) & 0xff);
        header[4] = static_cast<std::uint8_t>((len >> 16) & 0xff);
        header[5] = static_cast<std::uint8_t>((len >> 24) & 0xff);
        std::vector<util::ByteSpan> segments;
        for (std::int64_t sent = 0; sent < total_frames;) {
          const auto now = std::min<std::int64_t>(
              static_cast<std::int64_t>(batch), total_frames - sent);
          segments.clear();
          for (std::int64_t i = 0; i < now; ++i) {
            segments.emplace_back(header, sizeof header);
            segments.emplace_back(data.data(), data.size());
          }
          dos.write_vec(segments);
          sent += now;
        }
      }
      dos.close();
    });
    std::int64_t frames = 0;
    if (reader == Reader::kLegacy) {
      while (util::read_frame(dis)) ++frames;
    } else {
      util::FrameReader fr(dis);
      while (fr.next()) ++frames;
      if (batching_factor != nullptr && fr.refills() > 0) {
        *batching_factor = static_cast<double>(fr.frames()) /
                           static_cast<double>(fr.refills());
      }
    }
    writer.join();
    if (frames != total_frames) {
      std::fprintf(stderr, "framed bench: frame count mismatch\n");
      std::abort();
    }
  });
}

double bench_pause_reconnect_us(int cycles) {
  core::DetachableInputStream dis_a, dis_b;
  core::DetachableOutputStream dos;
  core::connect(dos, dis_a);
  bool on_a = true;
  const auto t0 = Clock::now();
  for (int i = 0; i < cycles; ++i) {
    dos.pause();
    dos.reconnect(on_a ? dis_b : dis_a);
    on_a = !on_a;
  }
  return secs_since(t0) / cycles * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: CI smoke sizing (the normalized ratios are what CI compares,
  // and those stabilize long before the full run completes).
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  // Full-mode sizing is what CI gates on: best-of-7 over runs long enough
  // (tens of ms each) that the envelope is stable to a few percent even on
  // a single-core, shared host. --quick is for local iteration only.
  const int reps = quick ? 3 : 7;
  const std::int64_t scale = quick ? 1 : 4;

  std::printf("=== Detachable-stream data-plane throughput ===\n\n");
  rwbench::JsonSummary json("stream_throughput");
  json.meta("rw_obs_enabled", RW_OBS_ENABLED != 0);
  json.meta("quick", quick);

  // The normalization denominator: single-thread memcpy at the largest
  // chunk, i.e. the best the memory system does with zero synchronization.
  const double memcpy_ref = bench_memcpy(65536, 4096 * scale, reps);
  json.meta("memcpy_ref_mbytes_per_sec", memcpy_ref);
  std::printf("%-24s %12.0f MB/s  (normalization reference)\n\n",
              "memcpy/65536", memcpy_ref);

  std::printf("%-24s %12s %10s\n", "series", "MB/s", "vs_memcpy");
  const auto emit = [&](const std::string& name, std::size_t bytes,
                        double mbps, rwbench::JsonFields extra = {}) {
    const double ratio = mbps / memcpy_ref;
    std::printf("%-24s %12.0f %9.3fx\n", name.c_str(), mbps, ratio);
    rwbench::JsonFields fields = {{"name", name},
                                  {"bytes", static_cast<long long>(bytes)},
                                  {"mbytes_per_sec", mbps},
                                  {"vs_memcpy", ratio}};
    for (auto& f : extra) fields.push_back(std::move(f));
    json.row(std::move(fields));
  };

  emit("memcpy/4096", 4096, bench_memcpy(4096, 16384 * scale, reps));
  emit("memcpy/65536", 65536, memcpy_ref);

  emit("raw_pipe/4096", 4096, bench_raw_pipe(4096, 8192 * scale, reps));
  emit("raw_pipe/65536", 65536, bench_raw_pipe(65536, 1024 * scale, reps));

  const std::int64_t small_frames = 32768 * scale;
  const std::int64_t big_frames = 8192 * scale;
  emit("framed_legacy/320", 320,
       bench_framed(320, small_frames, 1, Reader::kLegacy, reps));
  emit("framed_legacy/4096", 4096,
       bench_framed(4096, big_frames, 1, Reader::kLegacy, reps));

  double batching = 0.0;
  emit("framed_batched/320", 320,
       bench_framed(320, small_frames, 1, Reader::kBatched, reps, &batching),
       {{"frames_per_refill", batching}});
  emit("framed_batched/4096", 4096,
       bench_framed(4096, big_frames, 1, Reader::kBatched, reps, &batching),
       {{"frames_per_refill", batching}});

  emit("framed_wbatch8/320", 320,
       bench_framed(320, small_frames, 8, Reader::kBatched, reps));
  emit("framed_wbatch8/4096", 4096,
       bench_framed(4096, big_frames, 8, Reader::kBatched, reps));

  const double pause_us = bench_pause_reconnect_us(quick ? 20'000 : 100'000);
  std::printf("%-24s %12.2f us/cycle\n", "pause_reconnect", pause_us);
  json.row({{"name", "pause_reconnect"}, {"micros_per_cycle", pause_us}});

  json.write();
  std::printf(
      "\nshape check: raw_pipe approaches memcpy at large chunks (two copies\n"
      "plus synchronization); framed_batched beats framed_legacy by\n"
      "amortizing one lock trip over many frames; wbatch8 additionally\n"
      "amortizes the writer side. CI gates on vs_memcpy, not absolute MB/s.\n");
  return 0;
}
