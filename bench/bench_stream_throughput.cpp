// Microbenchmarks of the detachable-stream mechanism itself: what the
// pause/reconnect capability costs relative to simpler plumbing.
//
//   * memcpy baseline        — the floor: move bytes with no concurrency
//   * DIS/DOS pipe           — one writer thread + one reader thread
//   * framed DIS/DOS pipe    — same, through the length-prefix codec
//   * pause/reconnect cycle  — the control-plane primitive by itself
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/detachable_stream.h"
#include "util/framing.h"

using namespace rapidware;

namespace {

void BM_MemcpyBaseline(benchmark::State& state) {
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  util::Bytes src(chunk, 0xaa), dst(chunk);
  for (auto _ : state) {
    std::copy(src.begin(), src.end(), dst.begin());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_MemcpyBaseline)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DetachablePipe(benchmark::State& state) {
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  const std::int64_t total_chunks = 2048;
  for (auto _ : state) {
    core::DetachableInputStream dis;
    core::DetachableOutputStream dos;
    core::connect(dos, dis);
    std::thread writer([&] {
      util::Bytes data(chunk, 0x5a);
      for (std::int64_t i = 0; i < total_chunks; ++i) dos.write(data);
      dos.close();
    });
    util::Bytes buf(chunk);
    std::size_t got = 0;
    for (;;) {
      const std::size_t n = dis.read_some(buf);
      if (n == 0) break;
      got += n;
    }
    writer.join();
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          total_chunks * static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_DetachablePipe)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_FramedDetachablePipe(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  const std::int64_t total_frames = 2048;
  for (auto _ : state) {
    core::DetachableInputStream dis;
    core::DetachableOutputStream dos;
    core::connect(dos, dis);
    std::thread writer([&] {
      util::Bytes data(payload, 0x5a);
      for (std::int64_t i = 0; i < total_frames; ++i) {
        util::write_frame(dos, data);
      }
      dos.close();
    });
    std::size_t frames = 0;
    while (util::read_frame(dis)) ++frames;
    writer.join();
    benchmark::DoNotOptimize(frames);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          total_frames * static_cast<std::int64_t>(payload));
}
BENCHMARK(BM_FramedDetachablePipe)->Arg(320)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_PauseReconnectCycle(benchmark::State& state) {
  core::DetachableInputStream dis_a, dis_b;
  core::DetachableOutputStream dos;
  core::connect(dos, dis_a);
  bool on_a = true;
  for (auto _ : state) {
    dos.pause();
    dos.reconnect(on_a ? dis_b : dis_a);
    on_a = !on_a;
  }
}
BENCHMARK(BM_PauseReconnectCycle);

}  // namespace

// Custom main: console output for humans plus google-benchmark's own JSON
// schema (not the rwbench one) in BENCH_stream_throughput.json, unless the
// caller already chose a --benchmark_out destination.
int main(int argc, char** argv) {
  const char* json_path = "BENCH_stream_throughput.json";
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = std::string("--benchmark_out=") + json_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::printf("json summary: %s\n", json_path);
  return 0;
}
