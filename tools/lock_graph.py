#!/usr/bin/env python3
"""lock_graph: static lock-order DAG extraction and baseline ratchet.

The runtime checker (-DRW_DEADLOCK_CHECK=ON, src/util/deadlock.h) proves
every *exercised* path deadlock-free; this tool covers the paths a test run
might miss. It parses, with no compiler and no third-party imports:

  * the declared rank table (src/util/lock_rank.h);
  * every named rw::Mutex declaration in src/
    (`rw::Mutex mu_{"subsystem/lock", rw::lockrank::kFoo};`);
  * every lexically-nested rw::MutexLock acquisition, including locks
    implied held by RW_REQUIRES on the enclosing method (declarations are
    read from headers, so an out-of-line *_locked body still counts);

and derives the static acquisition-order graph: an edge A -> B means some
function acquires B while holding A. The graph is compared against the
committed baseline (tools/lock_order.json) as a ratchet:

  * a CYCLE (in the union of found + baseline edges) fails — that is an
    ABBA deadlock waiting for the right schedule;
  * a RANK INVERSION fails — an edge from a higher-ranked lock to a
    lower-ranked one contradicts src/util/lock_rank.h;
  * a NEW EDGE not in the baseline fails — run `--write` after review, so
    every acquisition-order extension is a deliberate, diffed decision;
  * a REMOVED edge is free (the baseline shrinks on the next --write).

Modes
  --emit        print the extracted graph as JSON to stdout
  --write       rewrite tools/lock_order.json from the current tree
  --check       validate against the baseline (the CI mode; default)
  --self-check  run the extractor + validators against built-in fixtures,
                including an injected ABBA cycle and a rank inversion that
                MUST be caught (a checker that cannot fail is no checker)
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE_REL = "tools/lock_order.json"

RANK_CONST_RE = re.compile(r"inline constexpr int k(\w+) = (-?\d+);")
MUTEX_DECL_RE = re.compile(
    r"rw::Mutex\s+(\w+)\s*\{\s*\"([^\"]+)\"\s*,\s*rw::lockrank::k(\w+)\s*\}")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:RW_\w+(?:\([^)]*\))?\s+)?(\w+)"
                      r"[^;{]*\{")
METHOD_DEF_RE = re.compile(r"\b(\w+)::(\w+)\s*\(")
MUTEXLOCK_RE = re.compile(r"\brw::MutexLock\s+\w+\s*\(\s*([\w.>\-]+?)\s*[),]")
# `rw::MutexLock lk(mu);  // lock-graph: holds(obs/registry)` pins the lock
# name when the mutex arrives by reference and cannot be resolved statically.
HOLDS_RE = re.compile(r"//\s*lock-graph:\s*holds\(([^)]+)\)")
REQUIRES_DECL_RE = re.compile(
    r"\b(\w+)\s*\([^;{]*?\)\s*(?:const\s*)?RW_REQUIRES\(\s*([\w.>\-]+)\s*\)")


def strip_code_line(line: str) -> str:
    """Drops // comments, ignoring comment-lookalikes inside literals."""
    quote = None
    i = 0
    while i < len(line):
        c = line[i]
        if quote:
            if c == "\\":
                i += 1
            elif c == quote:
                quote = None
        elif c in "\"'":
            quote = c
        elif c == "/" and line.startswith("//", i):
            return line[:i]
        i += 1
    return line


def member_ident(expr: str) -> str:
    """`st_->mu` -> `mu`; `other.mu_` -> `mu_`; `mu_` -> `mu_`."""
    return re.split(r"->|\.", expr)[-1]


def src_files(repo: Path):
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix in (".h", ".cpp") and path.is_file():
            yield path


def parse_ranks(repo: Path) -> dict[str, int]:
    text = (repo / "src/util/lock_rank.h").read_text()
    return {name: int(val) for name, val in RANK_CONST_RE.findall(text)}


class LockTable:
    """Every named rw::Mutex declaration, indexed for expression lookup."""

    def __init__(self) -> None:
        self.locks: dict[str, dict] = {}          # lock name -> info
        self.by_class: dict[tuple[str, str], str] = {}  # (class, member) -> name
        self.by_stem: dict[tuple[str, str], set[str]] = {}  # (stem, member)
        self.by_member: dict[str, set[str]] = {}  # member -> names

    def add(self, name: str, rank_const: str, rank: int, cls: str,
            member: str, rel: str) -> None:
        self.locks[name] = {"rank": rank, "rank_const": "k" + rank_const,
                            "class": cls, "member": member, "file": rel}
        if cls:
            self.by_class[(cls, member)] = name
        stem = Path(rel).stem
        self.by_stem.setdefault((stem, member), set()).add(name)
        self.by_member.setdefault(member, set()).add(name)

    def resolve(self, expr: str, cls: str | None, stem: str) -> str | None:
        """Best-effort lock name for an acquisition expression: the current
        class's member, else a unique same-file-stem member, else a
        globally-unique member of that identifier."""
        ident = member_ident(expr)
        if cls and (cls, ident) in self.by_class:
            return self.by_class[(cls, ident)]
        stem_hits = self.by_stem.get((stem, ident), set())
        if len(stem_hits) == 1:
            return next(iter(stem_hits))
        global_hits = self.by_member.get(ident, set())
        if len(global_hits) == 1:
            return next(iter(global_hits))
        return None


def parse_locks(repo: Path, ranks: dict[str, int]) -> tuple[LockTable, list[str]]:
    table = LockTable()
    problems: list[str] = []
    for path in src_files(repo):
        rel = str(path.relative_to(repo))
        class_stack: list[tuple[int, str]] = []  # (depth-at-open, name)
        depth = 0
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            code = strip_code_line(raw)
            cm = CLASS_RE.search(code)
            if cm:
                class_stack.append((depth, cm.group(1)))
            for dm in MUTEX_DECL_RE.finditer(code):
                member, name, rank_const = dm.groups()
                if rank_const not in ranks:
                    problems.append(f"{rel}:{lineno}: unknown rank constant "
                                    f"k{rank_const}")
                    continue
                if name in table.locks:
                    problems.append(f"{rel}:{lineno}: duplicate lock name "
                                    f'"{name}" (first declared in '
                                    f"{table.locks[name]['file']})")
                    continue
                cls = class_stack[-1][1] if class_stack else ""
                table.add(name, rank_const, ranks[rank_const], cls, member, rel)
            depth += code.count("{") - code.count("}")
            while class_stack and depth <= class_stack[-1][0]:
                class_stack.pop()
    return table, problems


def parse_requires(repo: Path) -> dict[tuple[str, str], str]:
    """(class, method) -> member expression the method requires held."""
    out: dict[tuple[str, str], str] = {}
    for path in src_files(repo):
        class_stack: list[tuple[int, str]] = []
        depth = 0
        # Join continuation lines so `void f(...)\n    RW_REQUIRES(mu_);` parses.
        prev = ""
        for raw in path.read_text().splitlines():
            code = strip_code_line(raw)
            cm = CLASS_RE.search(code)
            if cm:
                class_stack.append((depth, cm.group(1)))
            joined = (prev + " " + code).strip()
            for rm in REQUIRES_DECL_RE.finditer(joined):
                cls = class_stack[-1][1] if class_stack else ""
                out[(cls, rm.group(1))] = rm.group(2)
            prev = code if not code.rstrip().endswith((";", "{", "}")) else ""
            depth += code.count("{") - code.count("}")
            while class_stack and depth <= class_stack[-1][0]:
                class_stack.pop()
    return out


def parse_edges(repo: Path, table: LockTable,
                requires: dict[tuple[str, str], str]
                ) -> tuple[dict[tuple[str, str], str], list[str]]:
    """Edges {(from, to): first site} from lexical MutexLock nesting plus
    RW_REQUIRES-implied holds. Unresolvable expressions are reported, not
    silently dropped."""
    edges: dict[tuple[str, str], str] = {}
    problems: list[str] = []
    for path in src_files(repo):
        rel = str(path.relative_to(repo))
        stem = Path(rel).stem
        class_stack: list[tuple[int, str]] = []
        held: list[tuple[int, str]] = []   # (depth-at-acquire, lock name)
        method_cls = None  # class of the out-of-line body being scanned
        depth = 0
        ns_depth = 0  # braces opened by namespace blocks
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            code = strip_code_line(raw)
            if re.search(r"\bnamespace\b[^;]*\{", code):
                ns_depth += code.count("{")
            cm = CLASS_RE.search(code)
            if cm:
                class_stack.append((depth, cm.group(1)))

            mm = METHOD_DEF_RE.search(code)
            if mm and depth == ns_depth and ";" not in code:
                # Out-of-line definition: remember the class for member
                # resolution and seed RW_REQUIRES-implied holds.
                mcls, method = mm.group(1), mm.group(2)
                method_cls = mcls
                req = requires.get((mcls, method))
                held = []
                if req:
                    name = table.resolve(req, mcls, stem)
                    if name:
                        # Implied held for the whole body (depth 1 once the
                        # definition's opening brace is counted).
                        held.append((depth + 1, name))
            cls = (class_stack[-1][1] if class_stack else None) or method_cls

            pinned = HOLDS_RE.search(raw)
            for lm in MUTEXLOCK_RE.finditer(code):
                if pinned and pinned.group(1) in table.locks:
                    name = pinned.group(1)
                else:
                    name = table.resolve(lm.group(1), cls, stem)
                if name is None:
                    problems.append(
                        f"{rel}:{lineno}: cannot resolve MutexLock "
                        f"argument '{lm.group(1)}' to a named lock")
                    continue
                if held:
                    key = (held[-1][1], name)
                    if key[0] != key[1]:
                        edges.setdefault(key, f"{rel}:{lineno}")
                held.append((depth, name))

            depth += code.count("{") - code.count("}")
            # A lock acquired at depth d dies when its block closes
            # (depth drops below d).
            held = [h for h in held if depth >= h[0]]
            if depth <= ns_depth and code.count("}") > code.count("{"):
                # A body (not a multi-line signature) just closed.
                method_cls = None
                ns_depth = min(ns_depth, depth)
            while class_stack and depth <= class_stack[-1][0]:
                class_stack.pop()
    return edges, problems


def find_cycle(edges: set[tuple[str, str]]) -> list[str]:
    adj: dict[str, list[str]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    stack: list[str] = []

    def dfs(node: str) -> list[str]:
        color[node] = GRAY
        stack.append(node)
        for nxt in adj.get(node, ()):
            if color.get(nxt, WHITE) == GRAY:
                return stack[stack.index(nxt):] + [nxt]
            if color.get(nxt, WHITE) == WHITE:
                cyc = dfs(nxt)
                if cyc:
                    return cyc
        stack.pop()
        color[node] = BLACK
        return []

    for node in list(adj):
        if color.get(node, WHITE) == WHITE:
            cyc = dfs(node)
            if cyc:
                return cyc
    return []


def extract(repo: Path):
    ranks = parse_ranks(repo)
    table, problems = parse_locks(repo, ranks)
    requires = parse_requires(repo)
    edges, edge_problems = parse_edges(repo, table, requires)
    return table, edges, problems + edge_problems


def graph_json(table: LockTable, edges: dict[tuple[str, str], str]) -> dict:
    return {
        "_comment": "Static lock-order baseline - regenerate with "
                    "tools/lock_graph.py --write after review "
                    "(docs/static_analysis.md).",
        "locks": {name: info["rank"] for name, info in
                  sorted(table.locks.items())},
        "edges": sorted([a, b] for a, b in edges),
    }


def validate(table: LockTable, edges: dict[tuple[str, str], str],
             baseline: dict | None) -> list[str]:
    failures: list[str] = []

    for (a, b), site in sorted(edges.items()):
        ra = table.locks.get(a, {}).get("rank", -1)
        rb = table.locks.get(b, {}).get("rank", -1)
        if ra >= 0 and rb >= 0 and ra >= rb:
            failures.append(
                f"RANK INVERSION: \"{a}\" (rank {ra}) is held while "
                f"acquiring \"{b}\" (rank {rb}) at {site}; ranks must "
                f"strictly ascend (src/util/lock_rank.h)")

    union = set(edges)
    baseline_edges: set[tuple[str, str]] = set()
    if baseline is not None:
        baseline_edges = {(a, b) for a, b in baseline.get("edges", [])}
        union |= baseline_edges
    cycle = find_cycle(union)
    if cycle:
        failures.append("LOCK ORDER CYCLE: " + " -> ".join(
            f'"{n}"' for n in cycle) + " — an ABBA deadlock waiting for "
            "the right schedule")

    if baseline is not None:
        for (a, b), site in sorted(edges.items()):
            if (a, b) not in baseline_edges:
                failures.append(
                    f"NEW EDGE not in {BASELINE_REL}: \"{a}\" -> \"{b}\" "
                    f"(first seen at {site}); review the nesting, then "
                    f"run tools/lock_graph.py --write")
        base_locks = baseline.get("locks", {})
        now_locks = {name: info["rank"] for name, info in table.locks.items()}
        if base_locks != now_locks:
            gone = sorted(set(base_locks) - set(now_locks))
            new = sorted(set(now_locks) - set(base_locks))
            moved = sorted(k for k in set(base_locks) & set(now_locks)
                           if base_locks[k] != now_locks[k])
            failures.append(
                f"LOCK TABLE DRIFT vs {BASELINE_REL}: added={new} "
                f"removed={gone} reranked={moved}; review, then run "
                f"tools/lock_graph.py --write")
    return failures


def run(repo: Path, mode: str) -> int:
    table, edges, problems = extract(repo)
    for p in problems:
        print(f"lock_graph: warning: {p}", file=sys.stderr)

    if mode == "--emit":
        print(json.dumps(graph_json(table, edges), indent=2))
        return 0

    if mode == "--write":
        out = repo / BASELINE_REL
        out.write_text(json.dumps(graph_json(table, edges), indent=2) + "\n")
        print(f"lock_graph: wrote {len(table.locks)} locks, "
              f"{len(edges)} edges to {BASELINE_REL}")
        return 0

    # --check
    baseline_path = repo / BASELINE_REL
    if not baseline_path.exists():
        print(f"lock_graph: {BASELINE_REL} missing; run --write first",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    failures = validate(table, edges, baseline)
    removed = {(a, b) for a, b in baseline.get("edges", [])} - set(edges)
    if removed and not failures:
        print(f"lock_graph: note: {len(removed)} baseline edge(s) no longer "
              "found; removals are free — --write will shrink the baseline")
    if failures:
        print("\n".join(failures))
        print(f"\nlock_graph --check: {len(failures)} failure(s)")
        return 1
    print(f"lock_graph --check: OK ({len(table.locks)} locks, "
          f"{len(edges)} static edges, acyclic, rank-consistent)")
    return 0


# ---------------------------------------------------------------------------
# --self-check fixtures

FIXTURE_RANKS = """\
namespace rw::lockrank {
inline constexpr int kUnranked = -1;
inline constexpr int kLow = 100;
inline constexpr int kHigh = 200;
}
"""

FIXTURE_CLEAN = """\
#include "util/lock_rank.h"
class Alpha {
  void nest();
  rw::Mutex mu_{"fix/alpha", rw::lockrank::kLow};
};
class Beta {
  rw::Mutex mu_{"fix/beta", rw::lockrank::kHigh};
};
void Alpha::nest() {
  rw::MutexLock lk(mu_);
  rw::MutexLock lk2(other_->mu_);  // resolves to fix/beta: unique global mu_? no - two mu_
}
"""

FIXTURE_ABBA = """\
#include "util/lock_rank.h"
class Alpha {
 public:
  void a_then_b();
  rw::Mutex a_{"fix/a", rw::lockrank::kUnranked};
  rw::Mutex b_{"fix/b", rw::lockrank::kUnranked};
};
void Alpha::a_then_b() {
  rw::MutexLock lk(a_);
  rw::MutexLock lk2(b_);
}
void other(Alpha& x) {
  rw::MutexLock lk(x.b_);
  rw::MutexLock lk2(x.a_);
}
"""

FIXTURE_INVERSION = """\
#include "util/lock_rank.h"
class Gamma {
  void wrong_way();
  rw::Mutex high_{"fix/high", rw::lockrank::kHigh};
  rw::Mutex low_{"fix/low", rw::lockrank::kLow};
};
void Gamma::wrong_way() {
  rw::MutexLock lk(high_);
  rw::MutexLock lk2(low_);
}
"""

FIXTURE_REQUIRES = """\
#include "util/lock_rank.h"
class Delta {
  void helper_locked() RW_REQUIRES(low_);
  rw::Mutex low_{"fix/low", rw::lockrank::kLow};
  rw::Mutex high_{"fix/high", rw::lockrank::kHigh};
};
void Delta::helper_locked() {
  rw::MutexLock lk(high_);
}
"""


def self_check() -> int:
    import tempfile

    def build(tree: dict[str, str]) -> Path:
        root = Path(tempfile.mkdtemp(prefix="lock_graph_fix_"))
        (root / "src/util").mkdir(parents=True)
        (root / "tools").mkdir()
        (root / "src/util/lock_rank.h").write_text(FIXTURE_RANKS)
        for rel, content in tree.items():
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(content)
        return root

    failures: list[str] = []

    # 1. The injected ABBA cycle must be caught even with no ranks involved.
    root = build({"src/fix/abba.cpp": FIXTURE_ABBA})
    table, edges, _ = extract(root)
    got = validate(table, edges, {"locks": {n: i["rank"] for n, i in
                                            table.locks.items()},
                                  "edges": sorted(list(e) for e in edges)})
    if not any("CYCLE" in f for f in got):
        failures.append(f"injected ABBA cycle not detected: {got}")

    # 2. A rank inversion must be caught without any baseline at all.
    root = build({"src/fix/inversion.cpp": FIXTURE_INVERSION})
    table, edges, _ = extract(root)
    got = validate(table, edges, None)
    if not any("RANK INVERSION" in f for f in got):
        failures.append(f"rank inversion not detected: {got}")

    # 3. RW_REQUIRES on an out-of-line body must imply the held lock.
    root = build({"src/fix/requires.cpp": FIXTURE_REQUIRES})
    table, edges, _ = extract(root)
    if ("fix/low", "fix/high") not in edges:
        failures.append(f"RW_REQUIRES-implied edge missed: {sorted(edges)}")

    # 4. A consistent tree must pass --check against its own baseline, and
    #    fail when the baseline omits the edge (the ratchet).
    root = build({"src/fix/requires.cpp": FIXTURE_REQUIRES})
    table, edges, _ = extract(root)
    ok_baseline = json.loads(json.dumps(graph_json(table, edges)))
    if validate(table, edges, ok_baseline):
        failures.append("consistent tree failed its own baseline")
    stale = dict(ok_baseline)
    stale["edges"] = []
    got = validate(table, edges, stale)
    if not any("NEW EDGE" in f for f in got):
        failures.append(f"baseline ratchet did not flag a new edge: {got}")

    if failures:
        print("lock_graph --self-check FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print("lock_graph --self-check: OK (ABBA cycle, rank inversion, "
          "RW_REQUIRES edge, and baseline ratchet all detected)")
    return 0


def main() -> int:
    mode = sys.argv[1] if len(sys.argv) > 1 else "--check"
    if mode == "--self-check":
        return self_check()
    if mode not in ("--emit", "--write", "--check"):
        print(__doc__)
        return 2
    return run(REPO, mode)


if __name__ == "__main__":
    sys.exit(main())
