#!/usr/bin/env python3
"""bench_compare: regression gate for benchmark JSON outputs.

Compares a freshly produced benchmark JSON (e.g. BENCH_rs_codec.json)
against a committed baseline (bench/baselines/*.json) and fails when
throughput regressed beyond a tolerance. Stdlib-only, same as the other
tools/ scripts (rw_lint.py, check_links.py), so it runs anywhere CI does.

Two input schemas:

  google-benchmark (bench_rs_codec): rows under "benchmarks", rates in
  "bytes_per_second". Handled by the relative/absolute modes below.

  rwbench (bench_json.h: bench_stream_throughput, bench_chain_overhead):
  rows under "rows", each with a unique "name" and a machine-independent
  "vs_memcpy" ratio (throughput normalized by the same run's memcpy
  baseline). Auto-detected; each named row's ratio is compared against the
  baseline's with the tolerance, and --min-ratio NAME=FLOOR asserts
  absolute floors on headline rows. Rows missing the metric in either
  document (e.g. pause_reconnect latency rows) are skipped.

Comparison modes for the google-benchmark schema:

  relative (default)
      CI machines differ wildly, so absolute bytes/s from another host are
      meaningless. Instead, each per-backend series is normalized by the
      SAME RUN's reference-backend series (names "<prefix>/reference/...")
      and the resulting speedups are compared. "AVX2 used to be 14x the
      scalar reference on whatever machine ran this, now it is 9x" is a
      code regression no matter the host. Backends present in the baseline
      but not runnable on the current host are skipped (CPU, not code).

  absolute (--absolute)
      Direct bytes_per_second comparison for same-machine A/B runs.

Additionally --min-speedup (default 1.5) asserts the best available
backend's speedup over the reference stays above the floor the FEC kernel
layer promises (docs/fec_kernels.md).

Exit status: 0 ok, 1 regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

# Series are grouped as "<prefix>/<backend>/<rest>"; the reference backend
# inside each group is the normalization denominator.
BACKEND_PREFIXES = ("BM_GfMulAddBackend", "BM_RsEncodeBackend")
REFERENCE = "reference"
# The headline series the --min-speedup floor applies to.
HEADLINE_PREFIX = "BM_RsEncodeBackend"


def load_rates(doc: dict) -> dict[str, float]:
    """name -> bytes_per_second for every aggregate-free benchmark row."""
    rates = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        if "bytes_per_second" in row:
            rates[row["name"]] = float(row["bytes_per_second"])
    return rates


def split_series(name: str):
    """'BM_RsEncodeBackend/avx2/12/8/1024' -> (prefix, backend, rest)."""
    parts = name.split("/")
    if len(parts) < 3 or parts[0] not in BACKEND_PREFIXES:
        return None
    return parts[0], parts[1], "/".join(parts[2:])


def speedups(rates: dict[str, float]) -> dict[str, float]:
    """Speedup over the same-run reference series, keyed by full name."""
    ref = {}
    for name, rate in rates.items():
        series = split_series(name)
        if series and series[1] == REFERENCE:
            ref[(series[0], series[2])] = rate
    out = {}
    for name, rate in rates.items():
        series = split_series(name)
        if not series or series[1] == REFERENCE:
            continue
        denom = ref.get((series[0], series[2]))
        if denom:
            out[name] = rate / denom
    return out


def compare(current: dict, baseline: dict, tolerance: float,
            absolute: bool, min_speedup: float) -> list[str]:
    errors = []
    cur_rates = load_rates(current)
    base_rates = load_rates(baseline)
    if not cur_rates:
        return ["current JSON has no benchmarks with bytes_per_second"]

    if absolute:
        for name, base in sorted(base_rates.items()):
            cur = cur_rates.get(name)
            if cur is None:
                continue  # e.g. backend not runnable on this host
            if cur < base * (1.0 - tolerance):
                errors.append(
                    f"{name}: {cur:.3e} B/s < baseline {base:.3e} B/s "
                    f"- {tolerance:.0%}")
    else:
        cur_speed = speedups(cur_rates)
        base_speed = speedups(base_rates)
        for name, base in sorted(base_speed.items()):
            cur = cur_speed.get(name)
            if cur is None:
                continue  # backend missing on this host: CPU, not code
            if cur < base * (1.0 - tolerance):
                errors.append(
                    f"{name}: speedup over reference {cur:.2f}x < baseline "
                    f"{base:.2f}x - {tolerance:.0%}")

        # Floor: the fastest backend this host can run must still deliver
        # the promised encode speedup over the scalar reference.
        headline = [v for k, v in cur_speed.items()
                    if k.startswith(HEADLINE_PREFIX + "/")]
        if headline and max(headline) < min_speedup:
            errors.append(
                f"best {HEADLINE_PREFIX} speedup {max(headline):.2f}x is "
                f"below the required {min_speedup:.2f}x floor")
        if not headline:
            errors.append(
                f"current JSON has no {HEADLINE_PREFIX}/<backend> series to "
                "check (benchmark filter too narrow?)")
    return errors


RWBENCH_METRIC = "vs_memcpy"


def is_rwbench(doc: dict) -> bool:
    return "rows" in doc and "benchmarks" not in doc


def load_ratios(doc: dict, metric: str) -> dict[str, float]:
    """name -> metric value for every named row carrying the metric."""
    out = {}
    for row in doc.get("rows", []):
        name = row.get("name")
        if isinstance(name, str) and isinstance(row.get(metric), (int, float)):
            out[name] = float(row[metric])
    return out


def compare_rwbench(current: dict, baseline: dict, tolerance: float,
                    floors: dict[str, float],
                    metric: str = RWBENCH_METRIC) -> list[str]:
    errors = []
    cur = load_ratios(current, metric)
    base = load_ratios(baseline, metric)
    if not cur:
        return [f"current JSON has no rows with a '{metric}' field"]
    for name, base_v in sorted(base.items()):
        cur_v = cur.get(name)
        if cur_v is None:
            errors.append(f"{name}: present in baseline but missing from "
                          "current run")
            continue
        if cur_v < base_v * (1.0 - tolerance):
            errors.append(
                f"{name}: {metric} {cur_v:.3f} < baseline {base_v:.3f} "
                f"- {tolerance:.0%}")
    for name, floor in sorted(floors.items()):
        cur_v = cur.get(name)
        if cur_v is None:
            errors.append(f"{name}: --min-ratio floor set but row missing "
                          "from current run")
        elif cur_v < floor:
            errors.append(
                f"{name}: {metric} {cur_v:.3f} is below the required "
                f"{floor:.3f} floor")
    return errors


def parse_floors(specs: list[str]) -> dict[str, float]:
    floors = {}
    for spec in specs:
        name, sep, value = spec.rpartition("=")
        if not sep:
            raise ValueError(f"--min-ratio needs NAME=FLOOR, got {spec!r}")
        floors[name] = float(value)
    return floors


def self_check() -> int:
    """Embedded unit checks on synthetic documents (ctest: bench_compare)."""
    def doc(rows):
        return {"benchmarks": [
            {"name": n, "bytes_per_second": v} for n, v in rows.items()]}

    base = doc({
        "BM_RsEncodeBackend/reference/12/8/1024": 100.0,
        "BM_RsEncodeBackend/avx2/12/8/1024": 1000.0,  # 10x
        "BM_GfMulAddBackend/reference/1500": 10.0,
        "BM_GfMulAddBackend/avx2/1500": 100.0,
    })
    checks = [
        # Identical run: clean.
        (compare(base, base, 0.10, False, 1.5), 0),
        # Speedup collapsed 10x -> 5x: must fail relative mode.
        (compare(doc({
            "BM_RsEncodeBackend/reference/12/8/1024": 100.0,
            "BM_RsEncodeBackend/avx2/12/8/1024": 500.0,
            "BM_GfMulAddBackend/reference/1500": 10.0,
            "BM_GfMulAddBackend/avx2/1500": 100.0,
        }), base, 0.10, False, 1.5), 1),
        # Absolute throughput halved: must fail absolute mode.
        (compare(doc({
            "BM_RsEncodeBackend/reference/12/8/1024": 50.0,
            "BM_RsEncodeBackend/avx2/12/8/1024": 1000.0,
            "BM_GfMulAddBackend/reference/1500": 10.0,
            "BM_GfMulAddBackend/avx2/1500": 100.0,
        }), base, 0.10, True, 1.5), 1),
        # Backend absent on this host: skipped, clean.
        (compare(doc({
            "BM_RsEncodeBackend/reference/12/8/1024": 100.0,
            "BM_RsEncodeBackend/portable64/12/8/1024": 250.0,
            "BM_GfMulAddBackend/reference/1500": 10.0,
        }), base, 0.10, False, 1.5), 0),
        # Best backend under the speedup floor: must fail.
        (compare(doc({
            "BM_RsEncodeBackend/reference/12/8/1024": 100.0,
            "BM_RsEncodeBackend/portable64/12/8/1024": 120.0,
        }), base, 0.10, False, 1.5), 1),
        # Measurement noise within tolerance: clean.
        (compare(doc({
            "BM_RsEncodeBackend/reference/12/8/1024": 100.0,
            "BM_RsEncodeBackend/avx2/12/8/1024": 950.0,
            "BM_GfMulAddBackend/reference/1500": 10.0,
            "BM_GfMulAddBackend/avx2/1500": 95.0,
        }), base, 0.10, False, 1.5), 0),
    ]

    def rwdoc(rows, extra_row=None):
        out = {"bench": "x", "schema_version": 1, "meta": {}, "rows": [
            {"name": n, "vs_memcpy": v} for n, v in rows.items()]}
        if extra_row:
            out["rows"].append(extra_row)
        return out

    rwbase = rwdoc({"framed_batched/4096": 0.70, "chain/8/1024": 0.055},
                   extra_row={"name": "pause_reconnect",
                              "micros_per_cycle": 1.5})
    checks += [
        # rwbench: identical run (metric-free rows ignored): clean.
        (compare_rwbench(rwbase, rwbase, 0.10, {}), 0),
        # rwbench: ratio collapsed beyond tolerance: must fail.
        (compare_rwbench(
            rwdoc({"framed_batched/4096": 0.40, "chain/8/1024": 0.055}),
            rwbase, 0.10, {}), 1),
        # rwbench: noise within tolerance: clean.
        (compare_rwbench(
            rwdoc({"framed_batched/4096": 0.66, "chain/8/1024": 0.052}),
            rwbase, 0.10, {}), 0),
        # rwbench: baseline row vanished from current run: must fail.
        (compare_rwbench(rwdoc({"framed_batched/4096": 0.70}),
                         rwbase, 0.10, {}), 1),
        # rwbench: headline floor violated: must fail.
        (compare_rwbench(rwbase, rwbase, 0.10,
                         {"chain/8/1024": 0.06}), 1),
        # rwbench: headline floor met: clean.
        (compare_rwbench(rwbase, rwbase, 0.10,
                         {"chain/8/1024": 0.05}), 0),
        # rwbench: current JSON carries no comparable rows: must fail.
        (compare_rwbench({"rows": []}, rwbase, 0.10, {}), 1),
    ]
    failed = 0
    for i, (errors, want_fail) in enumerate(checks):
        got_fail = 1 if errors else 0
        if got_fail != want_fail:
            print(f"self-check {i}: expected "
                  f"{'failure' if want_fail else 'pass'}, got {errors}")
            failed += 1
    print(f"bench_compare self-check: "
          f"{'OK' if not failed else f'{failed} broken'}")
    return 1 if failed else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", help="freshly produced benchmark JSON")
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw bytes/s (same-machine runs only)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required best-backend encode speedup floor")
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="NAME=FLOOR",
                        help="rwbench mode: row NAME's vs_memcpy must stay "
                             ">= FLOOR (repeatable)")
    parser.add_argument("--self-check", action="store_true",
                        help="run embedded unit checks and exit")
    args = parser.parse_args(argv[1:])

    if args.self_check:
        return self_check()
    if not args.current or not args.baseline:
        parser.error("--current and --baseline are required")

    try:
        with open(args.current, encoding="utf-8") as f:
            current = json.load(f)
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}")
        return 1

    if is_rwbench(current) or is_rwbench(baseline):
        if not (is_rwbench(current) and is_rwbench(baseline)):
            print("bench_compare: current and baseline use different "
                  "schemas (rwbench vs google-benchmark)")
            return 1
        try:
            floors = parse_floors(args.min_ratio)
        except ValueError as e:
            print(f"bench_compare: {e}")
            return 1
        errors = compare_rwbench(current, baseline, args.tolerance, floors)
        mode = "rwbench"
    else:
        errors = compare(current, baseline, args.tolerance, args.absolute,
                         args.min_speedup)
        mode = "absolute" if args.absolute else "relative"
    for err in errors:
        print(err)
    print(f"bench_compare ({mode}, tolerance {args.tolerance:.0%}): "
          f"{'OK' if not errors else f'{len(errors)} regression(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
