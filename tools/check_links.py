#!/usr/bin/env python3
"""Check relative markdown links in the repo's documentation.

Scans the given markdown files (default: README.md, DESIGN.md,
EXPERIMENTS.md, docs/*.md) for inline links and validates every *relative*
target against the working tree: the file (or directory) must exist, and a
`#fragment` into a markdown file must match a heading's GitHub-style anchor.
External links (http/https/mailto) are not fetched — CI must not flake on
the network.

Default mode additionally checks the docs cross-link graph:
  * docs-coverage — every docs/*.md appears in the README docs index
  * orphans      — every docs/*.md has an incoming link from at least one
                   *other* scanned page (a deep-dive nobody points at is
                   unreachable even if it happens to sit in the index)

Usage: tools/check_links.py [--orphans] [files...]
  --orphans   run only the cross-link graph checks (coverage + orphans)
Exit status: 0 if all links resolve, 1 otherwise (one line per bad link).
"""

import glob
import os
import re
import sys

# Inline links [text](target), skipping images' leading '!' is harmless
# (an image path must exist too). Targets with spaces are not used here.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks must not contribute links (they hold example syntax).
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_anchor(heading: str) -> str:
    """GitHub's slugger: lowercase, strip punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.lower().replace(" ", "-")


def anchors_of(md_path: str) -> set:
    anchors = set()
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(1)))
    return anchors


def links_of(md_path: str):
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def check_file(md_path: str) -> list:
    errors = []
    base = os.path.dirname(md_path)
    for lineno, target in links_of(md_path):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
            continue  # http:, https:, mailto:, ... — not ours to verify
        path, _, fragment = target.partition("#")
        resolved = md_path if not path else os.path.normpath(
            os.path.join(base, path))
        if path and not os.path.exists(resolved):
            errors.append(f"{md_path}:{lineno}: broken link: {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if github_anchor(fragment) not in anchors_of(resolved):
                errors.append(
                    f"{md_path}:{lineno}: missing anchor: {target}")
    return errors


def check_docs_coverage() -> list:
    """Every docs/*.md must be reachable from the README's docs index.

    A deep-dive nobody links to is invisible; this catches the common
    failure of adding a doc without adding its index row.
    """
    if not os.path.exists("README.md"):
        return []
    linked = set()
    for _, target in links_of("README.md"):
        path, _, _ = target.partition("#")
        if path:
            linked.add(os.path.normpath(path))
    return [
        f"README.md: docs file not linked from README: {doc}"
        for doc in sorted(glob.glob("docs/*.md"))
        if os.path.normpath(doc) not in linked
    ]


def default_files() -> list:
    files = [p for p in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
             if os.path.exists(p)]
    return files + sorted(glob.glob("docs/*.md"))


def check_orphans(files: list) -> list:
    """Every docs page needs an incoming link from some *other* page."""
    incoming = {}  # normalized target path -> set of linking source files
    for md in files:
        base = os.path.dirname(md)
        for _, target in links_of(md):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue
            path, _, _ = target.partition("#")
            if path:
                resolved = os.path.normpath(os.path.join(base, path))
                incoming.setdefault(resolved, set()).add(md)
    return [
        f"{doc}: orphaned page: no other doc links to it"
        for doc in sorted(glob.glob("docs/*.md"))
        if not (incoming.get(os.path.normpath(doc), set()) - {doc})
    ]


def main(argv: list) -> int:
    args = argv[1:]
    orphans_only = "--orphans" in args
    files = [a for a in args if a != "--orphans"]
    explicit = bool(files)
    if not files:
        files = default_files()
    all_errors = []
    if orphans_only:
        all_errors.extend(check_docs_coverage())
        all_errors.extend(check_orphans(files))
        for err in all_errors:
            print(err)
        print(f"cross-link graph over {len(files)} files: "
              f"{'OK' if not all_errors else f'{len(all_errors)} orphans'}")
        return 1 if all_errors else 0
    for md in files:
        all_errors.extend(check_file(md))
    if not explicit:
        all_errors.extend(check_docs_coverage())
        all_errors.extend(check_orphans(files))
    for err in all_errors:
        print(err)
    print(f"checked {len(files)} files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken links'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
