#!/usr/bin/env python3
"""rw_lint: project-invariant linter for the lock-discipline rules.

Complements the Clang Thread Safety Analysis build (-DRW_THREAD_SAFETY=ON,
see docs/static_analysis.md): the compiler proves guarded-field access, this
script enforces the conventions the analysis cannot see. Runs on any Python 3
with no third-party imports, so it works in CI and as a local ctest.

Rules
  RW001  No naked std::mutex / std::condition_variable outside the rw::
         wrapper (src/util/mutex.h). All concurrent code uses rw::Mutex so
         it participates in the analysis and the deadlock checker; the only
         raw-primitive holdouts are the wrapper itself and the checker
         internals (src/util/deadlock.cpp), which carry reasoned waivers
         because the checker cannot be built on the type it instruments.
  RW002  No condition-variable wait without a predicate: every .wait(...)
         needs a predicate argument and every .wait_for/.wait_until needs
         (lock, time, predicate). Naked waits are how missed-wakeup and
         spurious-wakeup bugs ship.
  RW003  Annotated-class discipline: in a header class that owns an
         rw::Mutex, (a) every *_locked() helper declaration carries
         RW_REQUIRES, and (b) every data member declared in that class is
         either RW_GUARDED_BY-annotated, atomic, const, or itself a
         synchronization object.
  RW004  ControlOp codes (src/core/control.h) are dense from 1 and match
         the op table in docs/control_protocol.md.
  RW005  Every bench/bench_*.cpp emits the BENCH json summary line.
  RW006  No fresh util::Bytes construction inside the per-packet hot paths
         (PacketFilter run()/on_packet() bodies). Steady-state pass-through
         must be allocation-free (tests/filter_chain_test.cpp asserts it):
         acquire scratch from util::default_pool() or move an existing
         buffer through. Transform filters that genuinely need a fresh
         output buffer carry a reasoned waiver.
  RW007  No wall-clock time in the simulated layers: src/net/, src/wireless/
         and src/sim/ must not call std::chrono::steady_clock::now() or
         sleep_for. Those layers run under sim::VirtualClock in tests and
         the fleet simulation (docs/simulation.md); a stray wall-clock read
         makes runs timing-dependent and breaks the byte-identical
         determinism contract. Take a util::Clock* and use clock->now() /
         virtual scheduling instead. Genuine wall-clock needs (e.g. a
         watchdog that must fire even when the virtual loop wedges) carry a
         reasoned waiver.
  RW008  No blocking calls in run-to-completion dispatch contexts: the
         virtual-time layer (src/sim/), the observability snapshot/render
         paths (src/obs/), and the control-protocol dispatch code
         (src/core/control.*) must not join threads, wait on condition
         variables, or receive with an infinite timeout. These bodies run
         inline under a dispatcher's lock or clock step; one blocked
         callback stalls every queued event behind it, and under
         sim::VirtualClock it wedges virtual time itself. A worker thread
         that deliberately paces on a CV inside one of these directories
         (e.g. the stats log's wall-clock emitter) carries a reasoned
         waiver.

Run `rw_lint.py --self-check` to exercise every rule against built-in
fixtures (each rule must fire on a bad twin and stay silent on a waivered
or conforming twin); CI runs this before trusting a clean report.

Suppression: append  `// rw-lint: allow(RWxxx) <reason>`  to the offending
line (the reason is mandatory).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ALLOW_RE = re.compile(r"//\s*rw-lint:\s*allow\((RW\d{3})\)\s*\S")

errors: list[str] = []


def report(path: Path, lineno: int, rule: str, msg: str, line: str) -> None:
    allow = ALLOW_RE.search(line)
    if allow and allow.group(1) == rule:
        return
    rel = path.relative_to(REPO)
    errors.append(f"{rel}:{lineno}: {rule}: {msg}")


def strip_comments(line: str) -> str:
    """Drops // comments, ignoring comment-lookalikes inside string and
    character literals (a "tcp://host" URL must not hide the rest of the
    line from the checks)."""
    quote = None  # the open quote character, if inside a literal
    i = 0
    while i < len(line):
        c = line[i]
        if quote:
            if c == "\\":
                i += 1  # skip the escaped character
            elif c == quote:
                quote = None
        elif c in "\"'":
            quote = c
        elif c == "/" and line.startswith("//", i):
            return line[:i]
        i += 1
    return line


def src_files(*suffixes: str):
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix in suffixes and path.is_file():
            yield path


# ---------------------------------------------------------------------------
# RW001: naked std::mutex / std::condition_variable

RAW_SYNC_RE = re.compile(r"\bstd::(mutex|condition_variable(_any)?|shared_mutex|recursive_mutex)\b")


def check_rw001() -> None:
    for path in src_files(".h", ".cpp"):
        rel = str(path.relative_to(REPO))
        if rel == "src/util/mutex.h":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if RAW_SYNC_RE.search(strip_comments(line)):
                report(path, lineno, "RW001",
                       "raw std:: synchronization primitive; use rw::Mutex / "
                       "rw::CondVar (src/util/mutex.h) so the thread-safety "
                       "analysis sees it", line)


# ---------------------------------------------------------------------------
# RW002: condition-variable waits must take a predicate


def split_call_args(text: str, open_paren: int) -> list[str] | None:
    """Returns top-level comma-separated args of the call whose '(' is at
    open_paren, or None if the call spans past the given text."""
    depth = 0
    args: list[str] = []
    start = open_paren + 1
    for i in range(open_paren, len(text)):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args
        elif c == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return None


WAIT_RE = re.compile(r"\.\s*(wait|wait_for|wait_until)\s*\(")


def check_rw002() -> None:
    for path in src_files(".h", ".cpp"):
        if str(path.relative_to(REPO)) == "src/util/mutex.h":
            continue  # the wrapper implements the predicate API itself
        lines = path.read_text().splitlines()
        # Match on comment-stripped text: prose like "wait_for(n)" in a
        # comment is not a call site.
        text = "\n".join(strip_comments(ln) for ln in lines)
        code_lines = text.splitlines()
        for m in WAIT_RE.finditer(text):
            lineno = text.count("\n", 0, m.start()) + 1
            # Join a few lines so multi-line calls parse.
            window = "\n".join(code_lines[lineno - 1:lineno + 12])
            col = m.start() - (text.rfind("\n", 0, m.start()) + 1)
            paren = window.find("(", col)
            args = split_call_args(window, paren) if paren >= 0 else None
            if args is None:
                continue  # unparseable; leave it to review
            fn = m.group(1)
            need = 2 if fn == "wait" else 3
            if len(args) < need:
                report(path, lineno, "RW002",
                       f"naked {fn}() without a predicate — missed/spurious "
                       "wakeups; pass the condition as a lambda", lines[lineno - 1])


# ---------------------------------------------------------------------------
# RW003: annotated-class member discipline

MEMBER_OK_RE = re.compile(
    r"RW_GUARDED_BY|RW_PT_GUARDED_BY|std::atomic|rw::Mutex|rw::CondVar|"
    r"\bconst\b|\bstatic\b|\busing\b|\btypedef\b|\bfriend\b|"
    r"&\s*[a-z_]\w*_\s*;")  # reference members: the binding is immutable
MEMBER_DECL_RE = re.compile(r"^\s+[A-Za-z_][\w:<>,&*\s]*\s[a-z_]\w*_\s*(=[^;]*)?;")
LOCKED_DECL_RE = re.compile(r"\b\w+_locked\s*\(")


def check_rw003() -> None:
    for path in src_files(".h"):
        if str(path.relative_to(REPO)) == "src/util/mutex.h":
            continue
        text = path.read_text()
        if "rw::Mutex" not in text:
            continue
        lines = text.splitlines()

        # (a) *_locked declarations must carry RW_REQUIRES in the statement.
        stmt, stmt_start = "", 0
        for lineno, line in enumerate(lines, 1):
            if not stmt:
                stmt_start = lineno
            stmt += strip_comments(line)
            if ";" in stmt or "{" in stmt:
                if LOCKED_DECL_RE.search(stmt) and "RW_REQUIRES" not in stmt \
                        and "RW_NO_THREAD_SAFETY_ANALYSIS" not in stmt:
                    report(path, stmt_start, "RW003",
                           "*_locked() helper without RW_REQUIRES(mu) — the "
                           "name promises a held lock; make the compiler "
                           "check it", lines[stmt_start - 1])
                stmt = ""

        # (b) members of a class owning an rw::Mutex must be annotated or
        # inherently safe. Heuristic: inside a class body that declared an
        # rw::Mutex, flag unannotated member declarations.
        depth = 0
        class_depth: list[int] = []  # brace depths of open class bodies
        mutex_depth: set[int] = set()  # class depths that own an rw::Mutex
        pending: list[tuple[int, str, int]] = []  # (lineno, line, depth)
        for lineno, line in enumerate(lines, 1):
            code = strip_comments(line)
            if re.search(r"\b(class|struct)\s+\w+[^;]*$", code) and "{" in code:
                class_depth.append(depth)
            if "rw::Mutex" in code and class_depth:
                mutex_depth.add(class_depth[-1])
            if class_depth and depth == class_depth[-1] + 1 \
                    and MEMBER_DECL_RE.match(code) \
                    and not MEMBER_OK_RE.search(code) \
                    and "(" not in code.split("=")[0]:
                pending.append((lineno, line, class_depth[-1]))
            depth += code.count("{") - code.count("}")
            while class_depth and depth <= class_depth[-1]:
                d = class_depth.pop()
                if d in mutex_depth:
                    for plineno, pline, pdepth in pending:
                        if pdepth == d:
                            report(path, plineno, "RW003",
                                   "data member of an rw::Mutex-owning class "
                                   "without RW_GUARDED_BY (or atomic/const)",
                                   pline)
                    mutex_depth.discard(d)
                pending = [p for p in pending if p[2] != d]


# ---------------------------------------------------------------------------
# RW004: ControlOp codes dense and documented

def check_rw004() -> None:
    header = REPO / "src/core/control.h"
    doc = REPO / "docs/control_protocol.md"
    enum_m = re.search(r"enum class ControlOp[^{]*\{(.*?)\};", header.read_text(),
                       re.S)
    if not enum_m:
        report(header, 1, "RW004", "enum class ControlOp not found", "")
        return
    ops = {name: int(val) for name, val in
           re.findall(r"k(\w+)\s*=\s*(\d+)", enum_m.group(1))}
    codes = sorted(ops.values())
    if codes != list(range(1, len(codes) + 1)):
        report(header, 1, "RW004",
               f"ControlOp codes must be dense from 1; got {codes}", "")
    doc_ops = {name: int(val) for name, val in
               re.findall(r"^\|\s*(\w+)\s*\|\s*(\d+)\s*\|", doc.read_text(),
                          re.M)}
    if doc_ops != ops:
        only_code = {k: v for k, v in ops.items() if doc_ops.get(k) != v}
        only_doc = {k: v for k, v in doc_ops.items() if ops.get(k) != v}
        report(doc, 1, "RW004",
               f"op table out of sync with control.h: header={only_code} "
               f"doc={only_doc}", "")


# ---------------------------------------------------------------------------
# RW005: benches emit the BENCH json line

def check_rw005() -> None:
    for path in sorted((REPO / "bench").glob("bench_*.cpp")):
        text = path.read_text()
        # Either the rwbench JsonSummary helper or a hand-rolled
        # BENCH_<name>.json writer (the google-benchmark-based benches).
        if "JsonSummary" not in text and "BENCH_" not in text:
            report(path, 1, "RW005",
                   "bench binary without a BENCH json summary (bench_util.h)",
                   "")


# ---------------------------------------------------------------------------
# RW006: per-packet util::Bytes construction in data-plane hot loops

HOT_DEF_RE = re.compile(r"\b(?:[A-Za-z_]\w*::)*(run|on_packet)\s*\(")
# A Bytes object being created: declaration (`util::Bytes body = ...`,
# `Bytes out;`) or a ctor expression (`emit(util::Bytes(...))`).
BYTES_CTOR_RE = re.compile(r"\b(?:util::)?Bytes\b\s*(?:[a-z_]\w*\s*)?[({=;]")
# Not an allocation: pool acquire, moving an existing buffer through,
# references/pointers/template args, spans.
RW006_SAFE_RE = re.compile(
    r"\.acquire\s*\(|std::move\s*\(|Bytes\s*[&*>]|ByteSpan")


def check_rw006() -> None:
    for path in src_files(".h", ".cpp"):
        raw_lines = path.read_text().splitlines()
        code_lines = [strip_comments(ln) for ln in raw_lines]
        text = "\n".join(code_lines)
        for m in HOT_DEF_RE.finditer(text):
            # Walk to the matching ')' of the parameter list.
            depth, end_paren = 0, -1
            for k in range(m.end() - 1, len(text)):
                c = text[k]
                if c == "(":
                    depth += 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        end_paren = k
                        break
            if end_paren < 0:
                continue
            # A definition has '{' before the next ';' (else it is a
            # declaration or a call site).
            body_open = -1
            for k in range(end_paren + 1, len(text)):
                if text[k] == ";":
                    break
                if text[k] == "{":
                    body_open = k
                    break
            if body_open < 0:
                continue
            depth, body_close = 0, len(text)
            for k in range(body_open, len(text)):
                c = text[k]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if depth == 0:
                        body_close = k
                        break
            first = text.count("\n", 0, body_open) + 1  # line of the '{'
            last = text.count("\n", 0, body_close) + 1
            for lineno in range(first + 1, last):
                code = code_lines[lineno - 1]
                if RW006_SAFE_RE.search(code):
                    continue
                if BYTES_CTOR_RE.search(code):
                    report(path, lineno, "RW006",
                           "fresh util::Bytes in a per-packet hot path "
                           "(run()/on_packet()); acquire from "
                           "util::default_pool() or move the input buffer "
                           "through", raw_lines[lineno - 1])


# ---------------------------------------------------------------------------
# RW007: no wall-clock reads or sleeps in the simulated layers

# Layers that must stay driveable by sim::VirtualClock (docs/simulation.md).
RW007_LAYERS = ("src/net/", "src/wireless/", "src/sim/")
RW007_RE = re.compile(
    r"std::chrono::steady_clock::now\s*\(|\bsleep_for\s*\(")


def check_rw007() -> None:
    for path in src_files(".h", ".cpp"):
        rel = str(path.relative_to(REPO))
        if not rel.startswith(RW007_LAYERS):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if RW007_RE.search(strip_comments(line)):
                report(path, lineno, "RW007",
                       "wall-clock dependence in a simulated layer; take a "
                       "util::Clock* (virtual time in tests/sim) instead of "
                       "steady_clock::now()/sleep_for", line)


# ---------------------------------------------------------------------------
# RW008: no blocking calls in run-to-completion dispatch contexts

RW008_CONTEXTS = ("src/sim/", "src/obs/", "src/core/control.",
                  "src/core/event_loop.", "src/core/worker_pool.")
RW008_RE = re.compile(
    r"\.\s*join\s*\(\s*\)|\.\s*(wait|wait_for|wait_until)\s*\(|"
    r"\brecv\s*\(\s*-1\b")


def check_rw008() -> None:
    for path in src_files(".h", ".cpp"):
        rel = str(path.relative_to(REPO))
        if not rel.startswith(RW008_CONTEXTS):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if RW008_RE.search(strip_comments(line)):
                report(path, lineno, "RW008",
                       "blocking call in a run-to-completion dispatch "
                       "context (sim callbacks, obs snapshot paths, control "
                       "dispatch); restructure so the dispatcher never "
                       "blocks, or waive with the reason it cannot stall "
                       "the event loop", line)


def run_checks() -> list[str]:
    """Runs every rule against the current REPO; returns the error list."""
    global errors
    errors = []
    check_rw001()
    check_rw002()
    check_rw003()
    check_rw004()
    check_rw005()
    check_rw006()
    check_rw007()
    check_rw008()
    return errors


# ---------------------------------------------------------------------------
# --self-check: every rule must fire on a bad fixture and stay silent on a
# waivered or conforming twin. A linter whose rules silently stopped firing
# is worse than none, so CI runs this before trusting a clean report.

# One bad/good fixture pair per rule. Paths are repo-relative; the self-check
# materializes each tree in a temp dir and points REPO at it.
SELF_CHECK_DIRTY = {
    "src/dirty/legacy.h": (
        "#pragma once\n"
        "std::mutex bad_mutex_;\n"
        # Regression for the strip_comments string bug: the // inside the
        # literal must not hide the std::mutex after it.
        'inline std::string url_ = "tcp://host"; std::mutex sneaky_;\n'
    ),
    "src/dirty/waits.cpp": (
        "void f() {\n"
        "  cv_.wait(lk);\n"
        "  cv_.wait_for(lk, timeout);\n"
        "}\n"
    ),
    "src/dirty/klass.h": (
        "#pragma once\n"
        "class K {\n"
        "  void poke_locked();\n"
        "  rw::Mutex mu_;\n"
        "  int unguarded_;\n"
        "};\n"
    ),
    "src/core/control.h": (
        "enum class ControlOp {\n  kInsert = 1,\n  kRemove = 3,\n};\n"
    ),
    "docs/control_protocol.md": "no op table here\n",
    "bench/bench_dirty.cpp": "int main() { return 0; }\n",
    "src/dirty/hot.cpp": (
        "void Filt::run(core::PacketContext& ctx) {\n"
        "  util::Bytes fresh(16);\n"
        "}\n"
    ),
    "src/net/dirty_clock.cpp": (
        "void nap() { std::this_thread::sleep_for(t); }\n"
    ),
    "src/sim/dirty_block.cpp": "void drain() { worker_.join(); }\n",
}

# (file, rule) pairs the dirty tree must produce — nothing more, nothing less.
SELF_CHECK_EXPECTED = sorted([
    ("src/dirty/legacy.h", "RW001"), ("src/dirty/legacy.h", "RW001"),
    ("src/dirty/waits.cpp", "RW002"), ("src/dirty/waits.cpp", "RW002"),
    ("src/dirty/klass.h", "RW003"), ("src/dirty/klass.h", "RW003"),
    ("src/core/control.h", "RW004"), ("docs/control_protocol.md", "RW004"),
    ("bench/bench_dirty.cpp", "RW005"),
    ("src/dirty/hot.cpp", "RW006"),
    ("src/net/dirty_clock.cpp", "RW007"),
    ("src/sim/dirty_block.cpp", "RW008"),
])

SELF_CHECK_CLEAN = {
    "src/clean/legacy.h": (
        "#pragma once\n"
        "std::mutex waived_;  // rw-lint: allow(RW001) self-check fixture\n"
    ),
    "src/clean/waits.cpp": (
        "void f() {\n"
        "  cv_.wait(mu_, [this] { return ready_; });\n"
        "  cv_.wait(lk);  // rw-lint: allow(RW002) self-check fixture\n"
        "}\n"
    ),
    "src/clean/klass.h": (
        "#pragma once\n"
        "class K {\n"
        "  void poke_locked() RW_REQUIRES(mu_);\n"
        "  rw::Mutex mu_;\n"
        "  int guarded_ RW_GUARDED_BY(mu_);\n"
        "  int waived_;  // rw-lint: allow(RW003) self-check fixture\n"
        "};\n"
    ),
    "src/core/control.h": (
        "enum class ControlOp {\n  kInsert = 1,\n  kRemove = 2,\n};\n"
    ),
    "docs/control_protocol.md": (
        "| Insert | 1 |\n| Remove | 2 |\n"
    ),
    "bench/bench_clean.cpp": "int main() { JsonSummary(); }\n",
    "src/clean/hot.cpp": (
        "void Filt::run(core::PacketContext& ctx) {\n"
        "  out = std::move(ctx.packet);\n"
        "  util::Bytes w(4);  // rw-lint: allow(RW006) self-check fixture\n"
        "}\n"
    ),
    "src/net/clean_clock.cpp": (
        "void nap() { std::this_thread::sleep_for(t); }"
        "  // rw-lint: allow(RW007) self-check fixture\n"
    ),
    "src/sim/clean_block.cpp": (
        "void drain() { worker_.join(); }"
        "  // rw-lint: allow(RW008) self-check fixture\n"
    ),
}


def self_check() -> int:
    import tempfile

    global REPO
    real_repo = REPO

    def run_tree(tree: dict[str, str]) -> list[tuple[str, str]]:
        global REPO
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            for rel, content in tree.items():
                f = root / rel
                f.parent.mkdir(parents=True, exist_ok=True)
                f.write_text(content)
            REPO = root
            try:
                found = run_checks()
            finally:
                REPO = real_repo
            out = []
            for e in found:
                loc, rule, _ = e.split(": ", 2)
                out.append((loc.rsplit(":", 1)[0], rule))
            return sorted(out)

    failures = []
    got = run_tree(SELF_CHECK_DIRTY)
    if got != SELF_CHECK_EXPECTED:
        missing = [x for x in SELF_CHECK_EXPECTED if x not in got]
        extra = [x for x in got if x not in SELF_CHECK_EXPECTED]
        failures.append(f"dirty tree mismatch: missing={missing} extra={extra}")
    got_clean = run_tree(SELF_CHECK_CLEAN)
    if got_clean:
        failures.append(f"clean tree not clean: {got_clean}")

    if failures:
        print("rw_lint --self-check FAILED")
        for f in failures:
            print("  " + f)
        return 1
    print(f"rw_lint --self-check: OK "
          f"({len(SELF_CHECK_EXPECTED)} expected findings fired, "
          f"clean twins silent)")
    return 0


def main() -> int:
    if "--self-check" in sys.argv[1:]:
        return self_check()
    run_checks()
    if errors:
        print("\n".join(errors))
        print(f"\nrw_lint: {len(errors)} error(s). "
              "See tools/rw_lint.py header for the rules "
              "and the suppression syntax.")
        return 1
    print("rw_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
